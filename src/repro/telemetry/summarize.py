"""Render a JSONL trace as human-readable text tables.

``python -m repro.telemetry summarize trace.jsonl`` prints, for whichever
event families the trace contains:

* the run manifest (code version, host, config salt / compute policy);
* per-engine attack summaries (runs, steps, wall time, ms/step) and step
  curves (mean loss by optimisation step);
* neighbourhood-cache efficiency (exact/stale/miss/tree totals, hit rate);
* scheduler utilization: the per-task span table, busy-vs-wall utilization,
  and the critical path through the task graph;
* resilience activity (only when any occurred): retries by task and error
  class, deadline kills, pool rebuilds/degradation, store quarantines;
* result-store traffic and the final counter totals;
* the top-k op profile when ``REPRO_PROFILE_OPS`` was active.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple


def load_trace(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """All well-formed events plus the number of malformed lines."""
    events: List[Dict[str, Any]] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(event, dict) and "type" in event:
                events.append(event)
            else:
                malformed += 1
    return events, malformed


def _by_type(events: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for event in events:
        grouped[event["type"]].append(event)
    return grouped


def _fmt_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count:.0f} B"
        count /= 1024.0
    return f"{count:.1f} GiB"


# ------------------------------------------------------------------ #
# Sections
# ------------------------------------------------------------------ #
def _manifest_section(manifests: List[Dict[str, Any]]) -> List[str]:
    lines = ["== manifest =="]
    if not manifests:
        return lines + ["(no manifest event)"]
    manifest = manifests[0]
    for key in ("git", "host", "python", "numpy", "platform", "jobs",
                "experiments"):
        if key in manifest:
            lines.append(f"{key:<12} {manifest[key]}")
    salt = manifest.get("config_salt") or {}
    policy = (salt.get("config") or {}).get("compute_policy")
    if policy is not None:
        lines.append(f"{'policy':<12} {policy}")
    return lines


def _engine_section(runs: List[Dict[str, Any]],
                    steps: List[Dict[str, Any]]) -> List[str]:
    lines = ["== attack engines =="]
    if not runs and not steps:
        return lines + ["(no attack events)"]
    per_engine: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"runs": 0, "steps": 0, "wall": 0.0, "events": 0})
    for run in runs:
        row = per_engine[str(run.get("engine"))]
        row["runs"] += 1
        row["steps"] += run.get("steps", 0)
        row["wall"] += run.get("dur_s", 0.0)
    for step in steps:
        per_engine[str(step.get("engine"))]["events"] += 1
    lines.append(f"{'engine':<12} {'runs':>5} {'steps':>7} {'events':>7} "
                 f"{'wall_s':>8} {'ms/step':>8}")
    for engine in sorted(per_engine):
        row = per_engine[engine]
        ms = (row["wall"] / row["steps"] * 1e3) if row["steps"] else 0.0
        lines.append(f"{engine:<12} {int(row['runs']):>5d} "
                     f"{int(row['steps']):>7d} {int(row['events']):>7d} "
                     f"{row['wall']:>8.2f} {ms:>8.2f}")
    return lines


def _curve_section(steps: List[Dict[str, Any]],
                   checkpoints: int = 6) -> List[str]:
    lines = ["== step curves (mean loss by step) =="]
    if not steps:
        return lines + ["(no attack_step events)"]
    curves: Dict[str, Dict[int, List[float]]] = defaultdict(
        lambda: defaultdict(list))
    for event in steps:
        try:
            curves[str(event.get("engine"))][int(event["step"])].append(
                float(event["loss"]))
        except (KeyError, TypeError, ValueError):
            continue
    for engine in sorted(curves):
        by_step = curves[engine]
        ordered = sorted(by_step)
        if len(ordered) <= checkpoints:
            chosen = ordered
        else:
            stride = (len(ordered) - 1) / (checkpoints - 1)
            chosen = sorted({ordered[round(i * stride)]
                             for i in range(checkpoints)})
        points = "  ".join(
            f"{step}:{sum(by_step[step]) / len(by_step[step]):.4g}"
            for step in chosen)
        scenes = max(len(values) for values in by_step.values())
        lines.append(f"{engine:<12} {points}  (scenes<= {scenes})")
    return lines


def cache_totals(runs: List[Dict[str, Any]]) -> Dict[str, int]:
    """Summed per-run ``NeighborhoodCache.stats()`` counters."""
    totals = {"exact_hits": 0, "stale_hits": 0, "misses": 0, "tree_hits": 0}
    for run in runs:
        cache = run.get("cache") or {}
        for key in totals:
            totals[key] += int(cache.get(key, 0))
    return totals


def _cache_section(runs: List[Dict[str, Any]]) -> List[str]:
    lines = ["== neighbourhood cache =="]
    if not runs:
        return lines + ["(no attack_run events)"]
    totals = cache_totals(runs)
    hits = totals["exact_hits"] + totals["stale_hits"]
    lookups = hits + totals["misses"]
    rate = (hits / lookups) if lookups else 0.0
    lines.append("  ".join(f"{key} {value}"
                           for key, value in totals.items()))
    lines.append(f"lookups {lookups}  hit rate {rate:.1%}")
    return lines


def _critical_path(tasks: List[Dict[str, Any]]
                   ) -> Tuple[List[str], float]:
    """Longest elapsed-weighted dependency chain through the task events."""
    elapsed = {task["task_id"]: float(task.get("elapsed") or 0.0)
               for task in tasks}
    deps = {task["task_id"]: [dep for dep in (task.get("deps") or [])
                              if dep in elapsed]
            for task in tasks}
    best: Dict[str, Tuple[float, List[str]]] = {}

    def walk(task_id: str) -> Tuple[float, List[str]]:
        if task_id in best:
            return best[task_id]
        best[task_id] = (elapsed[task_id], [task_id])   # cycle guard
        total, chain = elapsed[task_id], [task_id]
        for dep in deps[task_id]:
            dep_total, dep_chain = walk(dep)
            if dep_total + elapsed[task_id] > total:
                total = dep_total + elapsed[task_id]
                chain = dep_chain + [task_id]
        best[task_id] = (total, chain)
        return best[task_id]

    top: Tuple[float, List[str]] = (0.0, [])
    for task_id in elapsed:
        total, chain = walk(task_id)
        if total > top[0]:
            top = (total, chain)
    return top[1], top[0]


def _scheduler_section(tasks: List[Dict[str, Any]],
                       reports: List[Dict[str, Any]],
                       max_rows: int = 40) -> List[str]:
    lines = ["== scheduler =="]
    if not tasks:
        return lines + ["(no task events)"]
    counts: Dict[str, int] = defaultdict(int)
    for task in tasks:
        counts[str(task.get("status"))] += 1
    lines.append(f"tasks {len(tasks)}: "
                 + ", ".join(f"{count} {status}"
                             for status, count in sorted(counts.items())))
    lines.append(f"{'task_id':<44} {'status':<8} {'elapsed_s':>9}")
    ordered = sorted(tasks, key=lambda t: float(t.get("elapsed") or 0.0),
                     reverse=True)
    for task in ordered[:max_rows]:
        lines.append(f"{str(task.get('task_id')):<44} "
                     f"{str(task.get('status')):<8} "
                     f"{float(task.get('elapsed') or 0.0):>9.2f}")
    if len(ordered) > max_rows:
        lines.append(f"... ({len(ordered) - max_rows} more)")
    busy = sum(float(task.get("elapsed") or 0.0) for task in tasks)
    if reports:
        report = reports[-1]
        wall = float(report.get("wall_time") or 0.0)
        jobs = int(report.get("jobs") or 1)
        utilization = busy / (wall * jobs) if wall > 0 else 0.0
        lines.append(f"busy {busy:.2f}s  wall {wall:.2f}s  jobs {jobs}  "
                     f"worker utilization {utilization:.1%}")
    else:
        lines.append(f"busy {busy:.2f}s  (no run_report event)")
    chain, total = _critical_path(tasks)
    if chain:
        lines.append(f"critical path ({total:.2f}s): " + " -> ".join(chain))
    return lines


def _resilience_section(retries: List[Dict[str, Any]],
                        timeouts: List[Dict[str, Any]],
                        rebuilds: List[Dict[str, Any]],
                        quarantines: List[Dict[str, Any]],
                        reports: List[Dict[str, Any]]) -> List[str]:
    """Fault-tolerance activity: retries, timeouts, pool rebuilds, quarantines.

    Omitted entirely from traces of untroubled runs — its absence is the
    healthy signal.
    """
    if not (retries or timeouts or rebuilds or quarantines):
        return []
    lines = ["== resilience =="]
    if retries:
        per_task: Dict[str, int] = defaultdict(int)
        per_error: Dict[str, int] = defaultdict(int)
        for event in retries:
            per_task[str(event.get("task_id"))] += 1
            per_error[str(event.get("error"))] += 1
        errors = ", ".join(f"{count}x {error}" for error, count
                           in sorted(per_error.items(),
                                     key=lambda kv: -kv[1]))
        lines.append(f"retries {len(retries)} across {len(per_task)} "
                     f"task(s): {errors}")
        worst = max(per_task.items(), key=lambda kv: kv[1])
        if worst[1] > 1:
            lines.append(f"most retried: {worst[0]} ({worst[1]}x)")
    if timeouts:
        for event in timeouts:
            lines.append(f"timeout: {event.get('task_id')} killed after "
                         f"{float(event.get('timeout_s') or 0.0):.1f}s "
                         f"(attempt {event.get('attempt')})")
    for event in rebuilds:
        action = str(event.get("action"))
        lines.append(f"pool {action}: {event.get('reason')} "
                     f"(rebuild #{event.get('count')})")
    for event in quarantines:
        lines.append(f"quarantined: {str(event.get('key'))[:16]}... "
                     f"({event.get('reason')})")
    if reports and reports[-1].get("degraded"):
        lines.append("run DEGRADED to in-process serial execution")
    return lines


def _store_section(reports: List[Dict[str, Any]]) -> List[str]:
    stores = [report.get("store") for report in reports
              if report.get("store")]
    if not stores:
        return []
    store = stores[-1]
    line = (f"hits {store.get('hits', 0)}  misses {store.get('misses', 0)}  "
            f"read {_fmt_bytes(store.get('bytes_read', 0))}  "
            f"written {_fmt_bytes(store.get('bytes_written', 0))}")
    if store.get("quarantined"):
        line += f"  quarantined {store['quarantined']}"
    return ["== result store ==", line]


def _profile_section(profiles: List[Dict[str, Any]],
                     top_k: int = 12) -> List[str]:
    if not profiles:
        return []
    merged: Dict[str, List[float]] = {}
    for event in profiles:
        for row in event.get("ops") or []:
            entry = merged.setdefault(str(row.get("op")), [0, 0.0, 0.0])
            entry[0] += int(row.get("calls", 0))
            entry[1] += float(row.get("forward_s", 0.0))
            entry[2] += float(row.get("backward_s", 0.0))
    rows = sorted(merged.items(), key=lambda kv: kv[1][1] + kv[1][2],
                  reverse=True)[:top_k]
    lines = ["== op profile (top ops, inclusive) ==",
             f"{'op':<14} {'calls':>8} {'fwd_ms':>9} {'bwd_ms':>9}"]
    for name, (calls, fwd, bwd) in rows:
        lines.append(f"{name:<14} {calls:>8d} {fwd * 1e3:>9.2f} "
                     f"{bwd * 1e3:>9.2f}")
    return lines


def _counters_section(counter_events: List[Dict[str, Any]]) -> List[str]:
    if not counter_events:
        return []
    totals: Dict[str, float] = defaultdict(float)
    for event in counter_events:
        for name, value in (event.get("values") or {}).items():
            totals[name] += value
    lines = ["== counters =="]
    for name in sorted(totals):
        value = totals[name]
        rendered = int(value) if float(value).is_integer() else value
        lines.append(f"{name:<28} {rendered}")
    return lines


# ------------------------------------------------------------------ #
def summarize_events(events: List[Dict[str, Any]],
                     malformed: int = 0) -> str:
    grouped = _by_type(events)
    sections: List[List[str]] = [
        _manifest_section(grouped.get("manifest", [])),
        _engine_section(grouped.get("attack_run", []),
                        grouped.get("attack_step", [])),
        _curve_section(grouped.get("attack_step", [])),
        _cache_section(grouped.get("attack_run", [])),
        _scheduler_section(grouped.get("task", []),
                           grouped.get("run_report", [])),
        _resilience_section(grouped.get("task_retry", []),
                            grouped.get("task_timeout", []),
                            grouped.get("pool_rebuild", []),
                            grouped.get("store_quarantine", []),
                            grouped.get("run_report", [])),
        _store_section(grouped.get("run_report", [])),
        _profile_section(grouped.get("op_profile", [])),
        _counters_section(grouped.get("counters", [])),
    ]
    footer = [f"{len(events)} events"]
    converged = len(grouped.get("attack_converged", []))
    if converged:
        footer.append(f"{converged} convergence events")
    if malformed:
        footer.append(f"{malformed} malformed lines skipped")
    sections.append([", ".join(footer)])
    return "\n\n".join("\n".join(section)
                       for section in sections if section)


def summarize_path(path: str) -> str:
    events, malformed = load_trace(path)
    return summarize_events(events, malformed)


__all__ = ["cache_totals", "load_trace", "summarize_events",
           "summarize_path"]


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect JSONL telemetry traces.")
    parser.add_argument("command", choices=["summarize"],
                        help="report to produce")
    parser.add_argument("trace", help="path to a trace.jsonl file")
    args = parser.parse_args(argv)
    print(summarize_path(args.trace))
    return 0
