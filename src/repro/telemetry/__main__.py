"""CLI entry point: ``python -m repro.telemetry summarize trace.jsonl``."""

from .summarize import main

if __name__ == "__main__":
    raise SystemExit(main())
