"""Per-task statistics collection: cache counters scoped to one task.

The neighbourhood-cache counters exist in two places:

* every attack engine run installs a *fresh* :class:`~repro.accel.cache
  .NeighborhoodCache` via ``attack_compute`` — its counters are inherently
  per-run and are fed here when the run ends;
* everything outside an attack context (clean/defended evaluation forwards,
  the SOR defense) hits the *process-default* cache, whose counters
  accumulate for the life of the process.

A :class:`StatsCollector` therefore snapshots the ambient cache's counters
on entry and adds only the *delta* on exit, so a task executed late in a
long multi-cell run reports its own cache traffic, not the process
lifetime's stale totals.  The scheduler wraps every task execution (serial
and worker-side) in a collector and files the result into the task's
:class:`~repro.pipeline.progress.TaskRecord`, the result-store metadata
sidecar, and the :class:`~repro.pipeline.progress.RunReport` rollup.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Counter names carried over from ``NeighborhoodCache.stats()``.
_CACHE_KEYS = ("exact_hits", "stale_hits", "misses", "tree_hits")


class StatsCollector:
    """Accumulates cache counters for the duration of one task."""

    def __init__(self) -> None:
        self.attacks = 0
        self.steps = 0
        self.cache: Dict[str, int] = {key: 0 for key in _CACHE_KEYS}
        self._ambient_base: Optional[Dict[str, int]] = None

    # -------------------------------------------------------------- #
    def add_cache_stats(self, stats: Dict[str, int],
                        attack: bool = True) -> None:
        """Fold one ``NeighborhoodCache.stats()`` mapping into the totals."""
        for key in _CACHE_KEYS:
            self.cache[key] += int(stats.get(key, 0))
        if attack:
            self.attacks += 1
            self.steps += int(stats.get("step", 0))

    def as_dict(self) -> Dict[str, int]:
        """Flat JSON-friendly summary (stored on the task record)."""
        summary = dict(self.cache)
        summary["attacks"] = self.attacks
        summary["attack_steps"] = self.steps
        return summary

    # -------------------------------------------------------------- #
    def _snapshot_ambient(self) -> None:
        self._ambient_base = _ambient_cache_stats()

    def _absorb_ambient(self) -> None:
        if self._ambient_base is None:
            return
        current = _ambient_cache_stats()
        delta = {key: current.get(key, 0) - self._ambient_base.get(key, 0)
                 for key in _CACHE_KEYS}
        self.add_cache_stats(delta, attack=False)
        self._ambient_base = None


def _ambient_cache_stats() -> Dict[str, int]:
    # Imported lazily: repro.accel imports this module at package init.
    from ..accel.cache import _default_cache
    return _default_cache.stats()


# ------------------------------------------------------------------ #
# Active collector stack (per process)
# ------------------------------------------------------------------ #
_collectors: List[StatsCollector] = []


@contextmanager
def collect_stats() -> Iterator[StatsCollector]:
    """Scope a collector over the body; attack runs report into it."""
    collector = StatsCollector()
    collector._snapshot_ambient()
    _collectors.append(collector)
    try:
        yield collector
    finally:
        _collectors.remove(collector)
        collector._absorb_ambient()


def record_cache_stats(stats: Dict[str, int]) -> None:
    """Called by ``attack_compute`` when an engine run's cache retires."""
    for collector in _collectors:
        collector.add_cache_stats(stats)


__all__ = ["StatsCollector", "collect_stats", "record_cache_stats"]
