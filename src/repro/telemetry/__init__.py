"""``repro.telemetry`` — structured tracing, metrics, and profiling.

The observability layer of the repository: a process-wide JSONL
:class:`Tracer` (disabled :class:`NullTracer` by default), per-task
:class:`StatsCollector` plumbing for the neighbourhood-cache counters, the
run-manifest trace header, and the ``python -m repro.telemetry summarize``
reporting tool.

Import structure: this package depends only on the standard library (plus
numpy inside :func:`build_manifest`), so every other subsystem —
``repro.accel``, the attack engines, the pipeline scheduler — can import it
without cycles.  The per-op autograd profiler lives in
:mod:`repro.telemetry.profiler` and is imported lazily because it touches
``repro.nn``.
"""

from .manifest import build_manifest, git_describe
from .stats import StatsCollector, collect_stats, record_cache_stats
from .summarize import cache_totals, load_trace, summarize_events, summarize_path
from .tracer import (
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    get_tracer,
    install_tracer,
    read_events,
    trace_to,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NullTracer",
    "StatsCollector",
    "Tracer",
    "build_manifest",
    "cache_totals",
    "collect_stats",
    "get_tracer",
    "git_describe",
    "install_tracer",
    "load_trace",
    "read_events",
    "record_cache_stats",
    "summarize_events",
    "summarize_path",
    "trace_to",
]
