"""Run manifest: the trace header that makes a trace self-describing.

The manifest is the first event of every CLI-produced trace.  It pins down
*what* produced the events that follow — the config salt (including the
resolved compute policy, exactly as the result store hashes it), the code
version (``git describe``), and the host — so a trace attached to a BENCH
comparison or a bug report can be interpreted without the original shell.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, else ``None``."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    describe = result.stdout.strip()
    return describe or None


def build_manifest(salt: Optional[Dict[str, Any]] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Everything a reader needs to interpret the trace that follows.

    ``salt`` is the scheduler's :func:`~repro.pipeline.scheduler
    .config_salt` mapping — config fields plus the resolved compute policy —
    passed in by the caller so this module stays free of experiment imports.
    """
    import numpy as np

    manifest: Dict[str, Any] = {
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "host": platform.node(),
        "git": git_describe(),
    }
    if salt is not None:
        manifest["config_salt"] = salt
    if extra:
        manifest.update(extra)
    return manifest


__all__ = ["build_manifest", "git_describe"]
