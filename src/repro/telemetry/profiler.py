"""Opt-in per-op autograd profiler: a top-k time table over Tensor ops.

:func:`profile_ops` temporarily wraps a curated set of
:class:`repro.nn.Tensor` methods with timing shims.  Each shim times the
forward call and, when the produced tensor carries a backward closure, also
wraps that closure so the backward pass is attributed to the same op name.
When the context exits the original methods are restored, so the profiler
is zero-cost (not even an ``if``) while inactive.

Timings are *inclusive*: ops implemented in terms of other ops (``mean``
calls ``sum``, ``__sub__`` calls ``__add__``) accumulate their callees'
time too.  Free tensor functions (``where``, ``gather_points``, ...) are
imported by name at their call sites and are not patchable after the fact;
their cost shows up in the gap between the op table and the wall clock.

Activation paths:

* explicitly, around any code: ``with profile_ops(tracer) as profile: ...``;
* via the environment: ``REPRO_PROFILE_OPS=1`` makes every
  ``attack_compute`` context profile its engine loop and emit an
  ``op_profile`` event per attack run into the installed tracer.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: Tensor methods the profiler wraps (forward + attributed backward).
PROFILED_METHODS: Tuple[str, ...] = (
    "__add__", "__neg__", "__mul__", "__truediv__", "__pow__", "__matmul__",
    "__getitem__", "exp", "log", "sqrt", "tanh", "sigmoid", "relu",
    "leaky_relu", "abs", "clip", "sum", "max", "reshape", "transpose",
    "broadcast_to", "expand_dims", "squeeze",
)


class OpProfile:
    """Accumulated per-op call counts and inclusive times (seconds)."""

    def __init__(self) -> None:
        self.forward: Dict[str, List[float]] = {}    # name -> [count, time]
        self.backward: Dict[str, List[float]] = {}

    def _add(self, table: Dict[str, List[float]], name: str,
             seconds: float) -> None:
        entry = table.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += seconds

    def add_forward(self, name: str, seconds: float) -> None:
        self._add(self.forward, name, seconds)

    def add_backward(self, name: str, seconds: float) -> None:
        self._add(self.backward, name, seconds)

    # -------------------------------------------------------------- #
    def top(self, k: int = 10) -> List[Tuple[str, int, float, float]]:
        """``(name, calls, forward_s, backward_s)`` rows, slowest first."""
        names = set(self.forward) | set(self.backward)
        rows = []
        for name in names:
            fwd_count, fwd_time = self.forward.get(name, [0, 0.0])
            _, bwd_time = self.backward.get(name, [0, 0.0])
            rows.append((name, int(fwd_count), fwd_time, bwd_time))
        rows.sort(key=lambda row: row[2] + row[3], reverse=True)
        return rows[:k]

    def table(self, k: int = 10) -> str:
        rows = self.top(k)
        if not rows:
            return "(no profiled ops)"
        lines = [f"{'op':<14} {'calls':>7} {'fwd_ms':>9} {'bwd_ms':>9} "
                 f"{'total_ms':>9}"]
        for name, calls, fwd, bwd in rows:
            lines.append(f"{name:<14} {calls:>7d} {fwd * 1e3:>9.2f} "
                         f"{bwd * 1e3:>9.2f} {(fwd + bwd) * 1e3:>9.2f}")
        return "\n".join(lines)

    def as_dict(self, k: int = 10) -> List[Dict[str, float]]:
        return [{"op": name, "calls": calls, "forward_s": fwd,
                 "backward_s": bwd} for name, calls, fwd, bwd in self.top(k)]


def _wrap_method(name: str, original, profile: OpProfile):
    @functools.wraps(original)
    def wrapper(self, *args, **kwargs):
        start = time.perf_counter()
        out = original(self, *args, **kwargs)
        profile.add_forward(name, time.perf_counter() - start)
        backward = getattr(out, "_backward", None)
        if backward is not None:
            def timed_backward(grad, _backward=backward, _name=name):
                begin = time.perf_counter()
                _backward(grad)
                profile.add_backward(_name, time.perf_counter() - begin)
            out._backward = timed_backward
        return out
    return wrapper


@contextmanager
def profile_ops(tracer=None, top_k: int = 12,
                label: Optional[str] = None) -> Iterator[OpProfile]:
    """Profile Tensor ops executed in the body; restore methods on exit.

    When ``tracer`` is an enabled tracer, an ``op_profile`` event carrying
    the top-``top_k`` table is emitted on exit.

    Method shims only see *eager* execution — a compiled-plan replay (see
    :mod:`repro.nn.compile`) never calls a Tensor method.  The profile is
    therefore also registered as the plan executor's profile sink, which
    reports replayed forward work as per-fused-segment spans (labelled by
    the segment's op chain) and backward work per VJP, so
    ``REPRO_PROFILE_OPS=1`` keeps covering steps 2..K after graph capture
    kicks in.
    """
    from ..nn import compile as plan_compile
    from ..nn.tensor import Tensor

    profile = OpProfile()
    originals = {}
    for name in PROFILED_METHODS:
        method = getattr(Tensor, name, None)
        if callable(method):
            originals[name] = method
            setattr(Tensor, name, _wrap_method(name, method, profile))
    plan_compile.set_profile_sink(profile)
    try:
        yield profile
    finally:
        plan_compile.set_profile_sink(None)
        for name, method in originals.items():
            setattr(Tensor, name, method)
        if tracer is not None and tracer.enabled:
            tracer.emit("op_profile", label=label,
                        ops=profile.as_dict(top_k))


__all__ = ["OpProfile", "PROFILED_METHODS", "profile_ops"]
