"""Process-wide structured tracing: JSONL events, timing spans, counters.

One :class:`Tracer` serves a whole process.  Every event is a single JSON
object written as one line (newline-delimited JSON) to the sink, so traces
are greppable, stream-parseable, and — because the sink is opened in append
mode and each event is one short ``write()`` — safely shared by the worker
processes of a parallel pipeline run on POSIX systems (``O_APPEND`` keeps
short single writes atomic).

The default tracer is a :class:`NullTracer`: every method is a no-op and
``enabled`` is ``False``, so instrumented hot loops guard any extra metric
computation behind ``if tracer.enabled`` and pay nothing when tracing is
off.  Telemetry only ever *reads* values — it never touches RNG streams or
mutates arrays — so trajectories are bit-for-bit identical with tracing on
or off (the golden regression suite asserts exactly that).

Event vocabulary (see the README schema table):

``manifest``
    First line of a trace: config salt, compute policy, git describe, host.
``attack_step``
    One optimisation step of one scene inside an attack engine.
``attack_converged``
    A scene satisfied its ``Converge(·)`` criterion.
``attack_run``
    One engine run: duration, steps, and the per-run cache counters.
``task`` / ``run_report``
    Scheduler bookkeeping: per-task spans and the end-of-run rollup.
``task_retry`` / ``task_timeout`` / ``pool_rebuild``
    Resilience layer: a transiently-failed attempt entering backoff, a
    task killed at its wall-clock deadline, and a broken worker pool being
    rebuilt (``action="rebuild"``) or the run degrading to serial
    execution (``action="degrade"``).
``store_quarantine``
    The result store moved a corrupt entry (checksum mismatch, unreadable
    pickle) into ``<root>/corrupt/`` instead of serving it.
``span``
    Generic named timing span (``Tracer.span``).
``counters``
    Monotonic counter totals, flushed when the tracer closes.
``op_profile``
    Per-op autograd timings (see :mod:`repro.telemetry.profiler`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, List, Optional

#: Bump when the event vocabulary changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Last-resort JSON coercion (numpy scalars/arrays, paths, ...)."""
    for attr in ("item", "tolist"):
        converter = getattr(value, attr, None)
        if callable(converter):
            try:
                return converter()
            except (TypeError, ValueError):
                continue    # e.g. .item() on a multi-element array
    return str(value)


class NullTracer:
    """Disabled tracer: every call is a no-op.

    ``enabled`` is the flag hot paths check before computing anything that
    exists only to be traced; with the null tracer installed the whole
    telemetry layer costs one attribute read per guarded site.
    """

    enabled: bool = False
    path: Optional[str] = None

    def emit(self, event_type: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator["NullTracer"]:
        yield self

    def count(self, name: str, value: float = 1) -> None:
        pass

    def counters(self) -> Dict[str, float]:
        return {}

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer(NullTracer):
    """JSONL tracer writing one event per line to ``path`` (or ``stream``).

    Parameters
    ----------
    path:
        Sink file, opened in append mode so several processes (the
        scheduler's workers) can share one trace.
    stream:
        Alternative: write to an existing text stream (tests).  The stream
        is not closed by :meth:`close`.
    manifest:
        Optional run-manifest mapping, emitted as the trace's first event
        (see :func:`repro.telemetry.manifest.build_manifest`).
    """

    enabled = True

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[IO[str]] = None,
                 manifest: Optional[Dict[str, Any]] = None) -> None:
        if (path is None) == (stream is None):
            raise ValueError("exactly one of path / stream is required")
        self.path = path
        self._owns_stream = stream is None
        if stream is None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            stream = open(path, "a", encoding="utf-8")
        self._stream: IO[str] = stream
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._closed = False
        if manifest is not None:
            self.emit("manifest", schema=TRACE_SCHEMA_VERSION, **manifest)

    # -------------------------------------------------------------- #
    def emit(self, event_type: str, **fields: Any) -> None:
        """Write one event: ``type`` + timestamp + pid + ``fields``."""
        record: Dict[str, Any] = {"type": event_type, "ts": time.time(),
                                  "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=_jsonable)
        with self._lock:
            if self._closed:
                return
            # One write per event keeps concurrent appends line-atomic.
            self._stream.write(line + "\n")
            self._stream.flush()

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator["Tracer"]:
        """Emit a ``span`` event with the wall-clock duration of the body."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.emit("span", name=name,
                      dur_s=time.perf_counter() - start, **fields)

    # -------------------------------------------------------------- #
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a monotonically-aggregated counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    # -------------------------------------------------------------- #
    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._stream.flush()

    def close(self) -> None:
        """Flush counter totals as a final ``counters`` event and close."""
        totals = self.counters()
        if totals:
            self.emit("counters", values=totals)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_stream:
                self._stream.close()


# ------------------------------------------------------------------ #
# Process-global tracer (mirrors repro.accel.cache's active-cache idiom)
# ------------------------------------------------------------------ #
_NULL = NullTracer()
_tracer: NullTracer = _NULL


def get_tracer() -> NullTracer:
    """The process-wide tracer (a disabled :class:`NullTracer` by default)."""
    return _tracer


def install_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """Install ``tracer`` (``None`` restores the null tracer); returns the
    previously installed one so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else _NULL
    return previous


@contextmanager
def trace_to(path: Optional[str] = None, stream: Optional[IO[str]] = None,
             manifest: Optional[Dict[str, Any]] = None) -> Iterator[Tracer]:
    """Context manager: trace everything in the body to ``path``/``stream``."""
    tracer = Tracer(path=path, stream=stream, manifest=manifest)
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
        tracer.close()


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace; malformed lines are skipped, not fatal."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "trace_to",
    "read_events",
]
