"""Attack-specific metrics: PSR, out-of-band accuracy/aIoU and drops.

Definitions follow Section V-A:

* **PSR (point success rate)** — the fraction of attacked points (those in
  the target set ``T``) whose prediction after the attack equals the
  attacker's target label.
* **OOB accuracy / aIoU** — segmentation quality measured only on the points
  *outside* ``T``; an ideal object-hiding attack leaves these untouched.
* **drop** — clean-minus-attacked difference of a metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .segmentation import accuracy_score, average_iou


def point_success_rate(prediction: np.ndarray, target_labels: np.ndarray,
                       target_mask: np.ndarray) -> float:
    """Fraction of attacked points predicted as the attacker's target label."""
    prediction = np.asarray(prediction)
    target_labels = np.asarray(target_labels)
    target_mask = np.asarray(target_mask, dtype=bool)
    if not target_mask.any():
        return 0.0
    return float((prediction[target_mask] == target_labels[target_mask]).mean())


def out_of_band_accuracy(prediction: np.ndarray, labels: np.ndarray,
                         target_mask: np.ndarray) -> float:
    """Accuracy restricted to the points outside the attacked set."""
    keep = ~np.asarray(target_mask, dtype=bool)
    if not keep.any():
        return 0.0
    return accuracy_score(np.asarray(prediction)[keep], np.asarray(labels)[keep])


def out_of_band_iou(prediction: np.ndarray, labels: np.ndarray,
                    target_mask: np.ndarray, num_classes: int) -> float:
    """aIoU restricted to the points outside the attacked set."""
    keep = ~np.asarray(target_mask, dtype=bool)
    if not keep.any():
        return 0.0
    return average_iou(np.asarray(prediction)[keep], np.asarray(labels)[keep],
                       num_classes)


def metric_drop(clean_value: float, attacked_value: float) -> float:
    """Clean-minus-attacked drop of a metric (positive = attack succeeded)."""
    return float(clean_value - attacked_value)


@dataclass
class AttackOutcome:
    """Per-cloud summary produced by the attack evaluation helpers."""

    distance: float
    accuracy: float
    aiou: float
    clean_accuracy: float
    clean_aiou: float
    psr: Optional[float] = None
    oob_accuracy: Optional[float] = None
    oob_aiou: Optional[float] = None
    iterations: int = 0
    converged: bool = False

    @property
    def accuracy_drop(self) -> float:
        return metric_drop(self.clean_accuracy, self.accuracy)

    @property
    def aiou_drop(self) -> float:
        return metric_drop(self.clean_aiou, self.aiou)


__all__ = [
    "point_success_rate",
    "out_of_band_accuracy",
    "out_of_band_iou",
    "metric_drop",
    "AttackOutcome",
]
