"""``repro.metrics`` — segmentation and attack evaluation metrics."""

from .attack_metrics import (
    AttackOutcome,
    metric_drop,
    out_of_band_accuracy,
    out_of_band_iou,
    point_success_rate,
)
from .segmentation import (
    accuracy_score,
    average_iou,
    confusion_matrix,
    per_class_iou,
    segmentation_report,
)
from .summary import BestAverageWorst, CaseSummary, mean_field, summarize_outcomes

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "per_class_iou",
    "average_iou",
    "segmentation_report",
    "point_success_rate",
    "out_of_band_accuracy",
    "out_of_band_iou",
    "metric_drop",
    "AttackOutcome",
    "CaseSummary",
    "BestAverageWorst",
    "summarize_outcomes",
    "mean_field",
]
