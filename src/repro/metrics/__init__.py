"""``repro.metrics`` — segmentation and attack evaluation metrics.

Two families: *segmentation* quality (:func:`accuracy_score`,
:func:`average_iou` and the :func:`confusion_matrix` they share — ground
truth equal to ``ignore_label`` is excluded, out-of-range labels raise)
and *attack* effectiveness (:class:`AttackOutcome`, :func:`metric_drop`,
the point success rate of the object-hiding objective, and the
out-of-band accuracy/IoU of the attacked points).  Table assemblers
summarise per-scene outcomes into the paper's best/average/worst rows.
All metric computation stays float64 regardless of the attack's compute
policy — reporting precision is never traded for speed.
"""

from .attack_metrics import (
    AttackOutcome,
    metric_drop,
    out_of_band_accuracy,
    out_of_band_iou,
    point_success_rate,
)
from .segmentation import (
    accuracy_score,
    average_iou,
    confusion_matrix,
    per_class_iou,
    segmentation_report,
)
from .summary import BestAverageWorst, CaseSummary, mean_field, summarize_outcomes

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "per_class_iou",
    "average_iou",
    "segmentation_report",
    "point_success_rate",
    "out_of_band_accuracy",
    "out_of_band_iou",
    "metric_drop",
    "AttackOutcome",
    "CaseSummary",
    "BestAverageWorst",
    "summarize_outcomes",
    "mean_field",
]
