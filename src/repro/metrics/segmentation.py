"""Segmentation quality metrics: accuracy and intersection-over-union.

These follow the definitions in Section V-A of the paper: accuracy is
``TP / N`` over a point cloud, and aIoU is ``TP_i / (TP_i + FP_i + FN_i)``
averaged over the classes present in either prediction or ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def accuracy_score(prediction: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of points whose predicted label matches the ground truth.

    Scores **every** point — deliberately, so the attack engines' hot-path
    convergence criterion stays the seed arithmetic.  Unlike the
    confusion-matrix-based metrics it does not honour :data:`IGNORE_LABEL`;
    callers with unannotated points must filter them first
    (``prediction[labels != IGNORE_LABEL]`` etc.), or the ignored points
    count as guaranteed misses and deflate the accuracy relative to the
    IoU numbers next to it.
    """
    prediction = np.asarray(prediction)
    labels = np.asarray(labels)
    if prediction.shape != labels.shape:
        raise ValueError("prediction and labels must have the same shape")
    if prediction.size == 0:
        return 0.0
    return float((prediction == labels).mean())


#: Ground-truth label conventionally meaning "not annotated, skip this point".
IGNORE_LABEL = -1


def confusion_matrix(prediction: np.ndarray, labels: np.ndarray,
                     num_classes: int,
                     ignore_label: Optional[int] = IGNORE_LABEL) -> np.ndarray:
    """``(num_classes, num_classes)`` confusion matrix (rows = ground truth).

    Ground-truth entries equal to ``ignore_label`` (default ``-1``, the
    conventional "unannotated point" marker; pass ``None`` to disable) are
    excluded from the matrix.  Any other label or prediction outside
    ``[0, num_classes)`` raises a ``ValueError`` — previously negative
    labels silently wrapped into the last classes and labels at or above
    ``num_classes`` surfaced as an opaque ``IndexError``.
    """
    prediction = np.asarray(prediction).ravel()
    labels = np.asarray(labels).ravel()
    if ignore_label is not None:
        valid = labels != ignore_label
        prediction = prediction[valid]
        labels = labels[valid]
    for name, values in (("labels", labels), ("prediction", prediction)):
        if values.size and (values.min() < 0 or values.max() >= num_classes):
            raise ValueError(
                f"{name} contain values outside [0, {num_classes}); "
                f"got range [{values.min()}, {values.max()}] — use "
                f"ignore_label (default {IGNORE_LABEL}) to mark unannotated "
                f"points")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, prediction), 1)
    return matrix


def per_class_iou(prediction: np.ndarray, labels: np.ndarray,
                  num_classes: int,
                  ignore_label: Optional[int] = IGNORE_LABEL) -> np.ndarray:
    """IoU for every class; NaN for classes absent from both arrays."""
    matrix = confusion_matrix(prediction, labels, num_classes,
                              ignore_label=ignore_label)
    true_positive = np.diag(matrix).astype(np.float64)
    false_positive = matrix.sum(axis=0) - true_positive
    false_negative = matrix.sum(axis=1) - true_positive
    denominator = true_positive + false_positive + false_negative
    iou = np.full(num_classes, np.nan)
    present = denominator > 0
    iou[present] = true_positive[present] / denominator[present]
    return iou


def average_iou(prediction: np.ndarray, labels: np.ndarray,
                num_classes: int,
                ignore_label: Optional[int] = IGNORE_LABEL) -> float:
    """Mean IoU over the classes present in prediction or ground truth (aIoU)."""
    iou = per_class_iou(prediction, labels, num_classes,
                        ignore_label=ignore_label)
    if np.all(np.isnan(iou)):
        return 0.0
    return float(np.nanmean(iou))


def segmentation_report(prediction: np.ndarray, labels: np.ndarray,
                        num_classes: int,
                        class_names: Optional[list] = None) -> Dict[str, float]:
    """Accuracy, aIoU and per-class IoU in one dictionary."""
    report: Dict[str, float] = {
        "accuracy": accuracy_score(prediction, labels),
        "aiou": average_iou(prediction, labels, num_classes),
    }
    iou = per_class_iou(prediction, labels, num_classes)
    for class_index in range(num_classes):
        name = (class_names[class_index] if class_names is not None
                else f"class_{class_index}")
        report[f"iou/{name}"] = float(iou[class_index])
    return report


__all__ = [
    "IGNORE_LABEL",
    "accuracy_score",
    "confusion_matrix",
    "per_class_iou",
    "average_iou",
    "segmentation_report",
]
