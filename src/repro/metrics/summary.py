"""Best / average / worst aggregation used throughout the paper's tables.

Tables II, III and VI report, for each attack configuration, the *best*,
*average* and *worst* attacked cloud — where "best" means the cloud most
vulnerable to the attack (lowest post-attack accuracy) and "worst" the most
robust one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .attack_metrics import AttackOutcome


@dataclass
class CaseSummary:
    """The distance / accuracy / aIoU triple reported for one case row."""

    distance: float
    accuracy: float
    aiou: float


@dataclass
class BestAverageWorst:
    """Best (most vulnerable), average and worst (most robust) case rows."""

    best: CaseSummary
    average: CaseSummary
    worst: CaseSummary
    clean_accuracy: float
    clean_aiou: float

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            "best": vars(self.best),
            "average": vars(self.average),
            "worst": vars(self.worst),
            "clean": {"accuracy": self.clean_accuracy, "aiou": self.clean_aiou},
        }


def summarize_outcomes(outcomes: Sequence[AttackOutcome]) -> BestAverageWorst:
    """Aggregate a list of per-cloud outcomes into best/average/worst rows.

    The ranking key is the post-attack accuracy (lower = more vulnerable =
    "best" case from the attacker's point of view), matching the paper's
    description of "the examples most vulnerable and robust against the
    attack".
    """
    if not outcomes:
        raise ValueError("summarize_outcomes requires at least one outcome")
    by_accuracy: List[AttackOutcome] = sorted(outcomes, key=lambda o: o.accuracy)
    best, worst = by_accuracy[0], by_accuracy[-1]
    return BestAverageWorst(
        best=CaseSummary(best.distance, best.accuracy, best.aiou),
        average=CaseSummary(
            distance=float(np.mean([o.distance for o in outcomes])),
            accuracy=float(np.mean([o.accuracy for o in outcomes])),
            aiou=float(np.mean([o.aiou for o in outcomes])),
        ),
        worst=CaseSummary(worst.distance, worst.accuracy, worst.aiou),
        clean_accuracy=float(np.mean([o.clean_accuracy for o in outcomes])),
        clean_aiou=float(np.mean([o.clean_aiou for o in outcomes])),
    )


def mean_field(outcomes: Sequence[AttackOutcome], field_name: str) -> float:
    """Mean of one numeric field over the outcomes (ignores ``None``)."""
    values = [getattr(o, field_name) for o in outcomes]
    values = [v for v in values if v is not None]
    if not values:
        return float("nan")
    return float(np.mean(values))


__all__ = ["CaseSummary", "BestAverageWorst", "summarize_outcomes", "mean_field"]
