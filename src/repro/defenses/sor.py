"""Statistical Outlier Removal (SOR) defense (Zhou et al., evaluated in §V-F).

SOR removes the points whose average distance to their ``k`` nearest
neighbours is anomalously large.  Following the paper's revision for
semantic segmentation, the distance is computed on the *joint*
coordinate + colour vector so colour-only perturbations can also be flagged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..accel import neighborhoods
from .base import Defense


class StatisticalOutlierRemoval(Defense):
    """Drop points whose mean k-NN distance exceeds ``mean + std_multiplier * std``.

    Parameters
    ----------
    k:
        Number of neighbours used for the distance statistic (2 in the paper).
    std_multiplier:
        Outlier threshold in standard deviations (1.0 is a common default).
    use_color:
        Whether colour channels participate in the distance (the paper's
        revised SOR does use them).
    color_weight:
        Relative weight of the colour channels versus the coordinates.
    """

    name = "sor"

    def __init__(self, k: int = 2, std_multiplier: float = 1.0,
                 use_color: bool = True, color_weight: float = 1.0) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.std_multiplier = std_multiplier
        self.use_color = use_color
        self.color_weight = color_weight

    def _feature_space(self, coords: np.ndarray, colors: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.float64)
        if not self.use_color:
            return coords
        colors = np.asarray(colors, dtype=np.float64) * self.color_weight
        return np.concatenate([coords, colors], axis=-1)

    def outlier_scores(self, coords: np.ndarray, colors: np.ndarray) -> np.ndarray:
        """Mean distance of each point to its k nearest neighbours."""
        features = self._feature_space(coords, colors)
        k = min(self.k, features.shape[0] - 1)
        if k < 1:
            return np.zeros(features.shape[0])
        # Content-keyed lookup: scoring the same cloud repeatedly (e.g. the
        # defended-vs-clean comparisons of Table VIII) reuses the graph.
        idx = neighborhoods().knn(features, k, include_self=False)
        neighbours = features[idx]                       # (N, k, D)
        distances = np.linalg.norm(neighbours - features[:, None, :], axis=-1)
        return distances.mean(axis=1)

    def keep_indices(self, coords: np.ndarray, colors: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        scores = self.outlier_scores(coords, colors)
        if scores.size == 0:                             # empty scene: nothing to judge
            return np.arange(0)
        threshold = scores.mean() + self.std_multiplier * scores.std()
        kept = np.flatnonzero(scores <= threshold)
        if kept.size == 0:                               # degenerate clouds: keep all
            kept = np.arange(scores.shape[0])
        return kept


__all__ = ["StatisticalOutlierRemoval"]
