"""Gaussian-jitter defense: add small random noise before segmentation.

Randomized smoothing in miniature: i.i.d. Gaussian noise on the coordinates
(and optionally the colours) washes out perturbations that sit close to the
decision boundary.  A *transformation* defense — every point survives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import Defense, EOTSample


class GaussianJitter(Defense):
    """Add ``N(0, sigma²)`` noise to coordinates (and colours if configured).

    Parameters
    ----------
    sigma:
        Coordinate noise scale (model units).
    color_sigma:
        Colour noise scale; ``0`` leaves the colours untouched (and draws
        nothing from the stream, so configurations with and without colour
        noise stay independently reproducible).
    seed:
        Reseed used whenever no explicit generator is passed.
    """

    name = "jitter"
    kind = "transformation"
    stochastic = True

    def __init__(self, sigma: float = 0.02, color_sigma: float = 0.0,
                 seed: int = 0) -> None:
        if sigma < 0 or color_sigma < 0:
            raise ValueError("noise scales must be non-negative")
        self.sigma = float(sigma)
        self.color_sigma = float(color_sigma)
        self.seed = seed

    def _draw(self, shape: Tuple[int, ...], rng: np.random.Generator
              ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        coord_noise = rng.standard_normal(shape) * self.sigma
        color_noise = (rng.standard_normal(shape) * self.color_sigma
                       if self.color_sigma > 0 else None)
        return coord_noise, color_noise

    def transform(self, coords: np.ndarray, colors: np.ndarray,
                  rng: Optional[np.random.Generator] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
        rng = rng or np.random.default_rng(self.seed)
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors)
        coord_noise, color_noise = self._draw(coords.shape, rng)
        jittered_colors = (np.asarray(colors, dtype=np.float64) + color_noise
                           if color_noise is not None else colors)
        return coords + coord_noise, jittered_colors

    def apply_batch(self, coords: np.ndarray, colors: np.ndarray,
                    labels: np.ndarray,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[Dict[str, np.ndarray]]:
        """Vectorised per-scene-reseed path: one broadcast add for the batch.

        Without a shared generator every scene reseeds and draws identical
        noise, so a single ``(N, 3)`` draw broadcast over ``(B, N, 3)``
        matches the serial loop bit for bit.
        """
        if rng is not None:
            return super().apply_batch(coords, colors, labels, rng=rng)
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        coord_noise, color_noise = self._draw(coords.shape[1:],
                                              np.random.default_rng(self.seed))
        jittered = np.asarray(coords, dtype=np.float64) + coord_noise
        jittered_colors = (np.asarray(colors, dtype=np.float64) + color_noise
                           if color_noise is not None else colors)
        return self._transformed_batch(jittered, jittered_colors,
                                       np.asarray(labels))

    def sample_eot(self, coords: np.ndarray, colors: np.ndarray,
                   rng: np.random.Generator) -> EOTSample:
        coord_noise, color_noise = self._draw(np.asarray(coords).shape, rng)
        return EOTSample(coord_offset=coord_noise, color_offset=color_noise)


__all__ = ["GaussianJitter"]
