"""Random-rotation defense: rotate the cloud about its vertical axis.

Segmentation features built on local neighbourhood geometry shift under a
rigid rotation, so a perturbation optimised for one orientation loses part
of its effect in another — the randomized-transform defense family.  The
rotation is about the cloud centroid so the defended cloud stays inside the
model's value box for moderate angles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import Defense, EOTSample


class RandomRotation(Defense):
    """Rotate coordinates by a uniform random angle about the z axis.

    Parameters
    ----------
    max_angle_deg:
        The angle is drawn uniformly from ``[-max_angle_deg, max_angle_deg]``
        (degrees).
    seed:
        Reseed used whenever no explicit generator is passed, keeping
        repeated evaluations deterministic.
    """

    name = "rotation"
    kind = "transformation"
    stochastic = True

    def __init__(self, max_angle_deg: float = 15.0, seed: int = 0) -> None:
        if max_angle_deg < 0:
            raise ValueError("max_angle_deg must be non-negative")
        self.max_angle_deg = float(max_angle_deg)
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _matrix(self, rng: np.random.Generator) -> np.ndarray:
        limit = np.deg2rad(self.max_angle_deg)
        angle = rng.uniform(-limit, limit)
        cos, sin = np.cos(angle), np.sin(angle)
        return np.array([[cos, sin, 0.0],
                         [-sin, cos, 0.0],
                         [0.0, 0.0, 1.0]])

    @staticmethod
    def _center(coords: np.ndarray) -> np.ndarray:
        if coords.shape[0] == 0:
            return np.zeros((1, 3))
        return coords.mean(axis=0, keepdims=True)

    def transform(self, coords: np.ndarray, colors: np.ndarray,
                  rng: Optional[np.random.Generator] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
        rng = rng or np.random.default_rng(self.seed)
        coords = np.asarray(coords, dtype=np.float64)
        matrix = self._matrix(rng)
        center = self._center(coords)
        return (coords - center) @ matrix + center, np.asarray(colors)

    def apply_batch(self, coords: np.ndarray, colors: np.ndarray,
                    labels: np.ndarray,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[Dict[str, np.ndarray]]:
        """Vectorised per-scene-reseed path: one stacked matmul for the batch.

        With no shared generator every scene reseeds from ``self.seed`` and
        draws the *same* angle, so a single ``(B, N, 3) @ (3, 3)`` product
        reproduces the serial per-scene rotations bit for bit (centroids
        stay per-scene).  A shared generator threads one stream through the
        scenes, which is inherently serial — fall back to the base loop.
        """
        if rng is not None:
            return super().apply_batch(coords, colors, labels, rng=rng)
        coords = np.asarray(coords)
        matrix = self._matrix(np.random.default_rng(self.seed))
        centers = np.stack([self._center(np.asarray(coords[b], dtype=np.float64))
                            for b in range(coords.shape[0])])      # (B, 1, 3)
        rotated = (np.asarray(coords, dtype=np.float64) - centers) @ matrix + centers
        return self._transformed_batch(rotated, np.asarray(colors),
                                       np.asarray(labels))

    def sample_eot(self, coords: np.ndarray, colors: np.ndarray,
                   rng: np.random.Generator) -> EOTSample:
        coords = np.asarray(coords, dtype=np.float64)
        matrix = self._matrix(rng)
        center = self._center(coords)
        # (x - c) @ R + c  ==  x @ R + (c - c @ R): the centroid is treated
        # as a constant of the current cloud (its gradient is neglected).
        return EOTSample(coord_matrix=matrix,
                         coord_offset=center - center @ matrix)


__all__ = ["RandomRotation"]
