"""Defense registry: build any defense by name (mirrors ``models.registry``).

Registry names key three things: the ``table_defenses`` experiment sweep,
the ``AttackConfig.defense`` knob of the adaptive attacker, and the
registry-wide defense contract test suite — adding an entry here enrols the
defense in all three.  ``"a+b"`` composes registered defenses into a
:class:`~repro.defenses.base.ChainedDefense` (per-member keyword arguments
are not supported through the chained spelling).
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import ChainedDefense, Defense
from .jitter import GaussianJitter
from .rotation import RandomRotation
from .sor import StatisticalOutlierRemoval
from .srs import SimpleRandomSampling
from .voxel import VoxelQuantization

_BUILDERS: Dict[str, Callable[..., Defense]] = {
    "srs": SimpleRandomSampling,
    "sor": StatisticalOutlierRemoval,
    "voxel": VoxelQuantization,
    "rotation": RandomRotation,
    "jitter": GaussianJitter,
}

DEFENSE_NAMES = tuple(_BUILDERS)


def defense_names() -> tuple:
    """The registered defense names, including late registrations.

    ``DEFENSE_NAMES`` is refreshed by :func:`register_defense`, but a
    ``from``-import taken before a registration would hold the stale tuple —
    sweep/contract consumers should call this instead.
    """
    return tuple(_BUILDERS)


def build_defense(name: str, **kwargs) -> Defense:
    """Instantiate a defense by its registry name.

    ``"voxel+jitter"`` style names build a :class:`ChainedDefense` from the
    ``+``-separated parts (each with its default parameters — pass
    constructed instances to ``ChainedDefense`` directly for more control).
    """
    if "+" in name:
        if kwargs:
            raise ValueError(
                "chained defense specs do not accept keyword arguments; "
                "construct ChainedDefense explicitly instead")
        return ChainedDefense([build_defense(part) for part in name.split("+")])
    try:
        builder = _BUILDERS[name]
    except KeyError as error:
        raise ValueError(
            f"unknown defense {name!r}; available: {sorted(_BUILDERS)}"
        ) from error
    return builder(**kwargs)


def register_defense(name: str, builder: Callable[..., Defense]) -> None:
    """Register a custom defense builder (used by extension experiments)."""
    global DEFENSE_NAMES
    if "+" in name:
        raise ValueError("defense names must not contain '+'")
    if name in _BUILDERS:
        raise ValueError(f"defense {name!r} is already registered")
    _BUILDERS[name] = builder
    DEFENSE_NAMES = tuple(_BUILDERS)


__all__ = ["build_defense", "defense_names", "register_defense",
           "DEFENSE_NAMES"]
