"""Defense interface: point-removal pre-processors applied before the model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics.segmentation import accuracy_score, average_iou
from ..models.base import SegmentationModel


class Defense:
    """Base class for anomaly-detection defenses.

    A defense inspects a (possibly adversarial) cloud and returns the indices
    of the points it keeps; the model is then evaluated on the filtered cloud.
    """

    name = "defense"

    def keep_indices(self, coords: np.ndarray, colors: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Indices of the points that survive the defense."""
        raise NotImplementedError

    def apply(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        """Filter a cloud; returns the kept coords/colors/labels and indices."""
        kept = self.keep_indices(coords, colors, rng=rng)
        return {
            "coords": np.asarray(coords)[kept],
            "colors": np.asarray(colors)[kept],
            "labels": np.asarray(labels)[kept],
            "indices": kept,
        }

    def apply_batch(self, coords: np.ndarray, colors: np.ndarray,
                    labels: np.ndarray,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[Dict[str, np.ndarray]]:
        """Filter a ``(B, N, ...)`` stack of clouds, one decision per scene.

        Defenses drop a different number of points per cloud, so the output
        is a ragged list of per-scene ``apply`` dictionaries.  Each scene is
        judged independently with the same semantics as a serial ``apply``
        call (stochastic defenses reseed per scene unless a shared ``rng``
        is passed explicitly), so defended batched attacks score exactly
        like their serial counterparts.
        """
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        labels = np.asarray(labels)
        return [self.apply(coords[b], colors[b], labels[b], rng=rng)
                for b in range(coords.shape[0])]


@dataclass
class DefenseEvaluation:
    """Model quality on a defended (filtered) cloud."""

    accuracy: float
    aiou: float
    points_removed: int
    defense_name: str


def evaluate_with_defense(model: SegmentationModel, defense: Optional[Defense],
                          coords: np.ndarray, colors: np.ndarray,
                          labels: np.ndarray,
                          rng: Optional[np.random.Generator] = None) -> DefenseEvaluation:
    """Run ``defense`` (possibly none) then the model, and score the prediction."""
    coords = np.asarray(coords)
    colors = np.asarray(colors)
    labels = np.asarray(labels)
    if defense is None:
        filtered = {"coords": coords, "colors": colors, "labels": labels,
                    "indices": np.arange(coords.shape[0])}
        name = "none"
    else:
        filtered = defense.apply(coords, colors, labels, rng=rng)
        name = defense.name
    prediction = model.predict_single(filtered["coords"], filtered["colors"])
    return DefenseEvaluation(
        accuracy=accuracy_score(prediction, filtered["labels"]),
        aiou=average_iou(prediction, filtered["labels"], model.num_classes),
        points_removed=coords.shape[0] - filtered["coords"].shape[0],
        defense_name=name,
    )


def evaluate_results_with_defense(model: SegmentationModel,
                                  defense: Optional[Defense],
                                  results: Sequence,
                                  rng: Optional[np.random.Generator] = None
                                  ) -> List[DefenseEvaluation]:
    """Score the adversarial clouds of a sequence of ``AttackResult``s."""
    return [evaluate_with_defense(model, defense, result.adversarial_coords,
                                  result.adversarial_colors, result.labels,
                                  rng=rng)
            for result in results]


__all__ = [
    "Defense",
    "DefenseEvaluation",
    "evaluate_with_defense",
    "evaluate_results_with_defense",
]
