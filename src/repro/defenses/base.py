"""Defense interface: pre-processors applied to a cloud before the model.

Two defense subtypes share one interface:

* **removal** defenses inspect a (possibly adversarial) cloud and return the
  indices of the points they keep (SRS, SOR); the model is then evaluated on
  the filtered cloud.
* **transformation** defenses return *modified* coordinates/colours for the
  same point set (voxel quantization, random rotation, Gaussian jitter) —
  every point survives, so labels and indices are untouched.

Both kinds also describe themselves to the adaptive (defense-aware) attack
engines through :meth:`Defense.sample_eot`: one stochastic draw of the
defense as a canonical affine-plus-mask :class:`EOTSample` the engines can
fold into their optimisation loops (expectation over transformation).

Empty-defended-cloud semantics
------------------------------
A defense may drop *every* point (e.g. SRS with a removal count at the cloud
size).  The model is never called on a 0-point cloud: the evaluation reports
``accuracy = aiou = NaN`` (explicitly "no points survived" — not an attack
success, which the former ``accuracy_score`` empty → ``0.0`` convention
silently claimed).  Aggregators are expected to ``nanmean`` over scenes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.segmentation import accuracy_score, average_iou
from ..models.base import SegmentationModel


@dataclass
class EOTSample:
    """One stochastic draw of a defense, in canonical affine-plus-mask form.

    The adaptive attack engines consume this instead of the defense itself:
    the coordinate map is ``coords @ coord_matrix + coord_offset`` (either
    part optional), colours get an additive ``color_offset``, and removal
    defenses contribute a ``keep_mask`` restricting the adversarial loss to
    the points that survive.  Offsets may be computed from the *current*
    adversarial cloud (voxel quantization uses this as a straight-through
    estimator: the offset snaps values while the gradient passes unchanged).
    """

    coord_matrix: Optional[np.ndarray] = None   # (3, 3)
    coord_offset: Optional[np.ndarray] = None   # broadcastable to (N, 3)
    color_offset: Optional[np.ndarray] = None   # broadcastable to (N, 3)
    keep_mask: Optional[np.ndarray] = None      # (N,) bool

    def apply_arrays(self, coords: np.ndarray, colors: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply the transform parts to plain arrays (black-box engines)."""
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        if self.coord_matrix is not None:
            coords = coords @ self.coord_matrix
        if self.coord_offset is not None:
            coords = coords + self.coord_offset
        if self.color_offset is not None:
            colors = colors + self.color_offset
        return coords, colors

    def restrict(self, mask: np.ndarray) -> np.ndarray:
        """The adversarial-loss mask restricted to the surviving points."""
        if self.keep_mask is None:
            return mask
        return np.asarray(mask, dtype=bool) & self.keep_mask


class Defense:
    """Base class for the anomaly-detection / input-sanitisation defenses.

    Subclasses implement :meth:`keep_indices` (``kind = "removal"``) or
    :meth:`transform` (``kind = "transformation"``); :meth:`apply` and
    :meth:`apply_batch` then work for either kind.  ``stochastic`` marks
    defenses whose decision consumes randomness — these reseed from their
    own ``seed`` whenever no explicit generator is passed, so repeated
    evaluations are deterministic.
    """

    name = "defense"
    kind = "removal"            # "removal" | "transformation"
    stochastic = False

    # ------------------------------------------------------------------ #
    # Subtype hooks
    # ------------------------------------------------------------------ #
    def keep_indices(self, coords: np.ndarray, colors: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Indices of the points that survive a removal defense."""
        raise NotImplementedError

    def transform(self, coords: np.ndarray, colors: np.ndarray,
                  rng: Optional[np.random.Generator] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Modified ``(coords, colors)`` of a transformation defense."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared API
    # ------------------------------------------------------------------ #
    def apply(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        """Run the defense on one cloud.

        Returns the defended ``coords`` / ``colors`` / ``labels`` plus
        ``indices`` — the surviving original indices (``arange(N)`` for
        transformation defenses, which never drop points).
        """
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        labels = np.asarray(labels)
        if self.kind == "transformation":
            new_coords, new_colors = self.transform(coords, colors, rng=rng)
            return {"coords": np.asarray(new_coords),
                    "colors": np.asarray(new_colors),
                    "labels": labels,
                    "indices": np.arange(coords.shape[0], dtype=np.int64)}
        kept = self.keep_indices(coords, colors, rng=rng)
        return {"coords": coords[kept], "colors": colors[kept],
                "labels": labels[kept], "indices": kept}

    def apply_batch(self, coords: np.ndarray, colors: np.ndarray,
                    labels: np.ndarray,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[Dict[str, np.ndarray]]:
        """Filter a ``(B, N, ...)`` stack of clouds, one decision per scene.

        Defenses may drop a different number of points per cloud, so the
        output is a ragged list of per-scene ``apply`` dictionaries.  Each
        scene is judged independently with the same semantics as a serial
        ``apply`` call (stochastic defenses reseed per scene unless a shared
        ``rng`` is passed explicitly), so defended batched attacks score
        exactly like their serial counterparts.  Subclasses override this
        with vectorised implementations where the per-scene decisions allow
        it; every override must stay bit-for-bit equal to the serial loop.
        """
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        labels = np.asarray(labels)
        return [self.apply(coords[b], colors[b], labels[b], rng=rng)
                for b in range(coords.shape[0])]

    @staticmethod
    def _transformed_batch(coords: np.ndarray, colors: np.ndarray,
                           labels: np.ndarray) -> List[Dict[str, np.ndarray]]:
        """Per-scene ``apply`` dicts for an already-transformed stack.

        The shared assembly step of every vectorised transformation
        ``apply_batch``: transformation defenses never drop points, so each
        scene keeps ``arange(N)`` indices and its original labels.
        """
        indices = np.arange(coords.shape[1], dtype=np.int64)
        return [{"coords": coords[b], "colors": colors[b],
                 "labels": labels[b], "indices": indices.copy()}
                for b in range(coords.shape[0])]

    # ------------------------------------------------------------------ #
    # Adaptive-attack hook
    # ------------------------------------------------------------------ #
    def sample_eot(self, coords: np.ndarray, colors: np.ndarray,
                   rng: np.random.Generator) -> EOTSample:
        """One draw of the defense for the adaptive attacker.

        Removal defenses contribute a keep mask (the attacker restricts its
        loss to the points that would survive); transformation defenses
        override this with their affine / straight-through parameters.
        """
        kept = self.keep_indices(np.asarray(coords, dtype=np.float64),
                                 np.asarray(colors, dtype=np.float64), rng=rng)
        keep_mask = np.zeros(np.asarray(coords).shape[0], dtype=bool)
        keep_mask[kept] = True
        return EOTSample(keep_mask=keep_mask)


class ChainedDefense(Defense):
    """Apply several defenses in sequence (e.g. voxel quantization + SOR).

    ``apply`` threads the cloud through every member in order, composing
    the surviving ``indices`` back to the original cloud.  ``sample_eot``
    composes the members' affine transforms and intersects their keep
    masks, so the adaptive attacker sees the chain as one canonical sample.
    """

    kind = "chained"

    def __init__(self, defenses: Sequence[Defense]) -> None:
        members = list(defenses)
        if not members:
            raise ValueError("ChainedDefense requires at least one defense")
        self.defenses = members
        self.name = "+".join(defense.name for defense in members)
        self.stochastic = any(defense.stochastic for defense in members)

    def apply(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        labels = np.asarray(labels)
        indices = np.arange(coords.shape[0], dtype=np.int64)
        for defense in self.defenses:
            out = defense.apply(coords, colors, labels, rng=rng)
            indices = indices[out["indices"]]
            coords, colors, labels = out["coords"], out["colors"], out["labels"]
        return {"coords": coords, "colors": colors, "labels": labels,
                "indices": indices}

    def sample_eot(self, coords: np.ndarray, colors: np.ndarray,
                   rng: np.random.Generator) -> EOTSample:
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        matrix: Optional[np.ndarray] = None
        coord_offset: Optional[np.ndarray] = None
        color_offset: Optional[np.ndarray] = None
        keep_mask: Optional[np.ndarray] = None
        for defense in self.defenses:
            sample = defense.sample_eot(coords, colors, rng)
            if sample.coord_matrix is not None:
                matrix = (sample.coord_matrix if matrix is None
                          else matrix @ sample.coord_matrix)
                if coord_offset is not None:
                    coord_offset = coord_offset @ sample.coord_matrix
            if sample.coord_offset is not None:
                coord_offset = (sample.coord_offset if coord_offset is None
                                else coord_offset + sample.coord_offset)
            if sample.color_offset is not None:
                color_offset = (sample.color_offset if color_offset is None
                                else color_offset + sample.color_offset)
            if sample.keep_mask is not None:
                keep_mask = (sample.keep_mask if keep_mask is None
                             else keep_mask & sample.keep_mask)
            # Later members judge the cloud *after* the earlier transforms
            # (removal members never shrink it here — the adaptive attacker
            # models removal as a loss mask, keeping N fixed).
            coords, colors = sample.apply_arrays(coords, colors)
        return EOTSample(coord_matrix=matrix, coord_offset=coord_offset,
                         color_offset=color_offset, keep_mask=keep_mask)


@dataclass
class DefenseEvaluation:
    """Model quality on a defended (filtered / transformed) cloud.

    ``accuracy`` and ``aiou`` are NaN when the defense dropped every point
    (see the module docstring); ``defended_points`` makes that state
    explicit for aggregators.
    """

    accuracy: float
    aiou: float
    points_removed: int
    defense_name: str
    defended_points: int = -1


def evaluate_with_defense(model: SegmentationModel, defense: Optional[Defense],
                          coords: np.ndarray, colors: np.ndarray,
                          labels: np.ndarray,
                          rng: Optional[np.random.Generator] = None) -> DefenseEvaluation:
    """Run ``defense`` (possibly none) then the model, and score the prediction.

    When the defense drops every point the model is *not* called and the
    scores are NaN — an empty defended cloud is "nothing left to segment",
    not a perfectly successful attack.
    """
    coords = np.asarray(coords)
    colors = np.asarray(colors)
    labels = np.asarray(labels)
    if defense is None:
        filtered = {"coords": coords, "colors": colors, "labels": labels,
                    "indices": np.arange(coords.shape[0])}
        name = "none"
    else:
        filtered = defense.apply(coords, colors, labels, rng=rng)
        name = defense.name
    defended_points = int(filtered["coords"].shape[0])
    if defended_points == 0:
        return DefenseEvaluation(
            accuracy=float("nan"), aiou=float("nan"),
            points_removed=int(coords.shape[0]), defense_name=name,
            defended_points=0,
        )
    prediction = model.predict_single(filtered["coords"], filtered["colors"])
    return DefenseEvaluation(
        accuracy=accuracy_score(prediction, filtered["labels"]),
        aiou=average_iou(prediction, filtered["labels"], model.num_classes),
        points_removed=coords.shape[0] - defended_points,
        defense_name=name,
        defended_points=defended_points,
    )


def evaluate_results_with_defense(model: SegmentationModel,
                                  defense: Optional[Defense],
                                  results: Sequence,
                                  rng: Optional[np.random.Generator] = None
                                  ) -> List[DefenseEvaluation]:
    """Score the adversarial clouds of a sequence of ``AttackResult``s."""
    return [evaluate_with_defense(model, defense, result.adversarial_coords,
                                  result.adversarial_colors, result.labels,
                                  rng=rng)
            for result in results]


__all__ = [
    "ChainedDefense",
    "Defense",
    "DefenseEvaluation",
    "EOTSample",
    "evaluate_with_defense",
    "evaluate_results_with_defense",
]
