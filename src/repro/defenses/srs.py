"""Simple Random Sampling (SRS) defense (Yang et al., evaluated in Section V-F).

SRS removes a random subset of points before segmentation, hoping to discard
enough perturbed points to weaken the attack.  The paper uses a sampling
number of 50 (about 1 % of the cloud).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.sampling import simple_random_sampling_removal
from .base import Defense


class SimpleRandomSampling(Defense):
    """Randomly drop ``num_removed`` points (or ``fraction`` of the cloud)."""

    name = "srs"
    stochastic = True

    def __init__(self, num_removed: int = 50, fraction: Optional[float] = None,
                 seed: int = 0) -> None:
        if num_removed < 0:
            raise ValueError("num_removed must be non-negative")
        if fraction is not None and not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"fraction must be in [0, 1], got {fraction!r}")
        self.num_removed = num_removed
        self.fraction = fraction
        self.seed = seed

    def keep_indices(self, coords: np.ndarray, colors: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Kept indices; removals are clamped to the cloud size.

        A removal count at or above the cloud size empties the cloud — the
        empty-defended-cloud semantics of :func:`evaluate_with_defense`
        (NaN scores, no model call) handle that case explicitly.
        """
        rng = rng or np.random.default_rng(self.seed)
        num_points = np.asarray(coords).shape[0]
        if num_points == 0:                              # empty scene: nothing to drop
            return np.arange(0, dtype=np.int64)
        removed = (int(round(num_points * self.fraction))
                   if self.fraction is not None else self.num_removed)
        return simple_random_sampling_removal(num_points, removed, rng)


__all__ = ["SimpleRandomSampling"]
