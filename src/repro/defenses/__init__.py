"""``repro.defenses`` — point-cloud defenses (Section V-F and extensions).

The original point-removal defenses (SRS, SOR) are joined by three
transformation defenses (voxel quantization, random rotation, Gaussian
jitter) and a :class:`ChainedDefense` combinator, all constructible by name
through the registry (:func:`build_defense`).
"""

from .base import (
    ChainedDefense,
    Defense,
    DefenseEvaluation,
    EOTSample,
    evaluate_results_with_defense,
    evaluate_with_defense,
)
from .jitter import GaussianJitter
from .registry import (DEFENSE_NAMES, build_defense, defense_names,
                       register_defense)
from .rotation import RandomRotation
from .sor import StatisticalOutlierRemoval
from .srs import SimpleRandomSampling
from .voxel import VoxelQuantization

__all__ = [
    "ChainedDefense",
    "Defense",
    "DefenseEvaluation",
    "DEFENSE_NAMES",
    "EOTSample",
    "build_defense",
    "defense_names",
    "register_defense",
    "evaluate_with_defense",
    "evaluate_results_with_defense",
    "GaussianJitter",
    "RandomRotation",
    "SimpleRandomSampling",
    "StatisticalOutlierRemoval",
    "VoxelQuantization",
]
