"""``repro.defenses`` — anomaly-detection defenses evaluated in Section V-F."""

from .base import (
    Defense,
    DefenseEvaluation,
    evaluate_results_with_defense,
    evaluate_with_defense,
)
from .sor import StatisticalOutlierRemoval
from .srs import SimpleRandomSampling

__all__ = [
    "Defense",
    "DefenseEvaluation",
    "evaluate_with_defense",
    "evaluate_results_with_defense",
    "SimpleRandomSampling",
    "StatisticalOutlierRemoval",
]
