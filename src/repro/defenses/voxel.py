"""Voxel-quantization defense: snap coordinates to a voxel grid.

Quantizing every coordinate to the centre of its voxel destroys the
sub-voxel structure an attacker's coordinate perturbation relies on, at the
cost of some geometric fidelity.  This is a *transformation* defense: every
point survives, only the coordinates change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import Defense, EOTSample


def _quantize(coords: np.ndarray, cell_size: float) -> np.ndarray:
    coords = np.asarray(coords, dtype=np.float64)
    return (np.floor(coords / cell_size) + 0.5) * cell_size


class VoxelQuantization(Defense):
    """Snap every coordinate to the centre of its ``cell_size`` voxel.

    Deterministic: quantization consumes no randomness, so repeated
    evaluations and adaptive-attack samples agree exactly.  The adaptive
    attacker sees it as a straight-through estimator — the sample's offset
    snaps the values while the gradient passes through unchanged (the
    quantizer's true gradient is zero almost everywhere).
    """

    name = "voxel"
    kind = "transformation"

    def __init__(self, cell_size: float = 0.05) -> None:
        if not cell_size > 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)

    def transform(self, coords: np.ndarray, colors: np.ndarray,
                  rng: Optional[np.random.Generator] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
        return _quantize(coords, self.cell_size), np.asarray(colors)

    def apply_batch(self, coords: np.ndarray, colors: np.ndarray,
                    labels: np.ndarray,
                    rng: Optional[np.random.Generator] = None
                    ) -> List[Dict[str, np.ndarray]]:
        """Vectorised: the whole ``(B, N, 3)`` stack quantizes in one op."""
        coords = np.asarray(coords)
        quantized = _quantize(coords, self.cell_size)
        return self._transformed_batch(quantized, np.asarray(colors),
                                       np.asarray(labels))

    def sample_eot(self, coords: np.ndarray, colors: np.ndarray,
                   rng: np.random.Generator) -> EOTSample:
        coords = np.asarray(coords, dtype=np.float64)
        return EOTSample(coord_offset=_quantize(coords, self.cell_size) - coords)


__all__ = ["VoxelQuantization"]
