"""Progress-event bridging between warm workers and job subscribers.

The attack engines already emit structured telemetry (``attack_step``,
``attack_converged``, ``attack_run`` — see :mod:`repro.telemetry.tracer`)
behind the process-wide tracer.  The serving layer reuses that exact
instrumentation instead of adding a second progress channel: each worker
process installs a :class:`QueueTracer` that forwards every event — tagged
with the job key the worker is currently executing — onto a
``multiprocessing`` queue, and the server pumps that queue into per-job
subscriber queues on its event loop.

Ordering guarantee: one job executes on one worker at a time, and the
queue preserves per-producer FIFO order, so a job's subscribers observe
its events in exactly the order the engine emitted them (asserted by
``tests/test_serve.py``).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from ..pipeline.worker import initialize_worker, run_task
from ..telemetry import NullTracer, get_tracer, install_tracer
from ..telemetry.tracer import _jsonable

#: Job key of the task currently executing in *this* worker process
#: (set around :func:`serve_run_task`; ``None`` between tasks).
_CURRENT_JOB: Optional[str] = None

#: The worker's event queue (set by :func:`initialize_serve_worker`);
#: used by :func:`serve_run_task` to send the end-of-task barrier.
_EVENT_QUEUE: Any = None


def current_job() -> Optional[str]:
    return _CURRENT_JOB


class QueueTracer(NullTracer):
    """Tracer that forwards events onto a multiprocessing queue.

    Installed as the process-wide tracer inside serve workers, so every
    instrumented site (engines, ``attack_compute``, the result store) feeds
    the job's progress stream with zero extra plumbing.  Events emitted
    outside any job (warm-up, idle maintenance) are dropped.

    A ``delegate`` tracer (the JSONL file tracer of a ``--trace`` run)
    receives every event as well, so serving and file tracing compose.
    """

    enabled = True

    def __init__(self, queue: Any, delegate: Optional[NullTracer] = None
                 ) -> None:
        self._queue = queue
        self._delegate = delegate

    def emit(self, event_type: str, **fields: Any) -> None:
        job = _CURRENT_JOB
        if job is not None:
            record: Dict[str, Any] = {"type": event_type, "ts": time.time(),
                                      "pid": os.getpid()}
            record.update(fields)
            try:
                self._queue.put(("event", job, _wire_safe(record)))
            except Exception:  # noqa: BLE001 — a dying queue must not
                pass           # take the task down with it
        if self._delegate is not None and self._delegate.enabled:
            self._delegate.emit(event_type, **fields)

    def count(self, name: str, value: float = 1) -> None:
        if self._delegate is not None:
            self._delegate.count(name, value)

    def close(self) -> None:
        if self._delegate is not None:
            self._delegate.close()


def _wire_safe(record: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce event fields to JSON-safe plain types (numpy scalars etc.)."""
    safe: Dict[str, Any] = {}
    for key, value in record.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _wire_safe(value)
        elif isinstance(value, (list, tuple)):
            safe[key] = [_jsonable(item) if not isinstance(
                item, (bool, int, float, str)) else item for item in value]
        else:
            safe[key] = _jsonable(value)
    return safe


# ---------------------------------------------------------------------- #
# Worker lifecycle
# ---------------------------------------------------------------------- #
def initialize_serve_worker(config_dict: Dict[str, Any],
                            trace_path: Optional[str] = None,
                            event_queue: Any = None) -> None:
    """Pool initializer of the serving layer.

    Reuses the pipeline's :func:`~repro.pipeline.worker.initialize_worker`
    (lazy warm context, compute-thread pinning, optional JSONL tracer),
    then installs the :class:`QueueTracer` bridge on top so engine events
    flow back to the server.
    """
    global _EVENT_QUEUE
    initialize_worker(config_dict, trace_path)
    if event_queue is not None:
        _EVENT_QUEUE = event_queue
        delegate = get_tracer()
        install_tracer(QueueTracer(
            event_queue, delegate if delegate.enabled else None))


def serve_run_task(job_key: str, task_id: str, kind: str,
                   params: Dict[str, Any], attempt: int = 1
                   ) -> Tuple[str, bool, Any, float,
                              Optional[Dict[str, Any]], Optional[Sequence[str]]]:
    """Worker entry point: tag the job, then run the task dependency-free.

    Wraps :func:`repro.pipeline.worker.run_task` (which never raises) so a
    failed job travels back as data, and brackets execution with the
    current-job marker the :class:`QueueTracer` stamps onto every event.

    On the way out it sends an end-of-task *barrier* onto the event queue.
    ``Queue.put`` is asynchronous (a feeder thread drains into the pipe),
    so the task's result future can complete before its last events reach
    the server; the barrier — queued after every event, on the same FIFO
    pipe — lets the server delay the terminal ``job_done``/``job_failed``
    publication until the stream is complete.
    """
    global _CURRENT_JOB
    _CURRENT_JOB = job_key
    try:
        return run_task(task_id, kind, params, {}, attempt)
    finally:
        _CURRENT_JOB = None
        if _EVENT_QUEUE is not None:
            try:
                _EVENT_QUEUE.put(("barrier", job_key, attempt))
            except Exception:  # noqa: BLE001 — never fail the task
                pass


__all__ = [
    "QueueTracer",
    "current_job",
    "initialize_serve_worker",
    "serve_run_task",
]
