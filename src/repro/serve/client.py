"""Blocking client for the serve daemon.

:class:`Client` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over plain sockets — one connection per
request (``watch`` holds its connection open for the stream).  It is the
access path used by the test suite, ``examples/serve_client.py`` and
``benchmarks/bench_serve.py``; anything it can do, ``nc`` can do too.

Typical session::

    client = Client(("127.0.0.1", 7431))        # or a unix-socket path
    job = client.submit_experiment("table3")
    for event in client.watch(job["job_id"]):
        print(event["type"])
    result = client.result(job["job_id"])
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from . import protocol

Address = Union[str, "tuple[str, int]"]


class ServeError(RuntimeError):
    """An operation the server refused (``ok: false`` response)."""

    def __init__(self, response: Dict[str, Any]) -> None:
        super().__init__(str(response.get("error", "serve request failed")))
        self.response = response


class Client:
    """Thin blocking client: one method per protocol operation.

    Parameters
    ----------
    address:
        ``(host, port)`` tuple or a unix-socket path — exactly what
        :attr:`AttackServer.address <repro.serve.server.AttackServer.address>`
        returns.
    timeout:
        Per-connection socket timeout in seconds (``None`` blocks forever;
        the default is generous because ``result`` waits server-side for
        the job to finish).
    """

    def __init__(self, address: Address,
                 timeout: Optional[float] = 3600.0) -> None:
        self.address = address
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address)
        else:
            host, port = self.address
            sock = socket.create_connection((host, port),
                                            timeout=self.timeout)
        return sock

    def request(self, message: Dict[str, Any],
                on_socket: Optional[Any] = None) -> Dict[str, Any]:
        """One request, one response line; raises :class:`ServeError` on
        ``ok: false``.

        ``on_socket`` (if given) is called with the connected socket
        before the request is sent, so a caller on another thread can
        abort a blocked exchange with ``sock.shutdown()`` — the remote
        executor backend uses this to bound its own shutdown.
        """
        with self._connect() as sock:
            if on_socket is not None:
                on_socket(sock)
            sock.sendall(protocol.encode(message))
            response = protocol.decode(self._read_line(sock))
        if not response.get("ok", False):
            raise ServeError(response)
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        with sock.makefile("rb") as stream:
            line = stream.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise protocol.ProtocolError("server closed the connection")
        return line

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns server identity, pid and uptime."""
        return self.request({"op": "ping"})

    def submit(self, kind: str,
               params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Submit one executor invocation (``kind`` + ``params``).

        Returns the submit acknowledgement: ``job_id``, ``state``, and the
        dedup verdict (``deduped`` for an in-flight hit, ``cached`` for a
        completed store hit).
        """
        job = {"kind": kind, "params": dict(params or {})}
        return self.request({"op": "submit", "job": job})

    def submit_experiment(self, name: str) -> Dict[str, Any]:
        """Submit a whole registered experiment by name."""
        return self.request({"op": "submit", "job": {"experiment": name}})

    def status(self, job_id: str) -> Dict[str, Any]:
        """Snapshot of one job: state, attempts, dedup counters, timing."""
        return self.request({"op": "status", "id": job_id})

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Fetch a job's payload, blocking server-side until it finishes.

        The returned dict carries the JSON-safe payload under ``result``
        (with a human-readable ``formatted`` rendering when the payload
        provides one).
        """
        message: Dict[str, Any] = {"op": "result", "id": job_id,
                                   "wait": wait}
        if timeout is not None:
            message["timeout"] = timeout
        return self.request(message)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job (running jobs are never preempted)."""
        return self.request({"op": "cancel", "id": job_id})

    def task(self, task_id: str, kind: str, params: Mapping[str, Any],
             deps_blob: str, *, attempt: int = 1, key: Optional[str] = None,
             cacheable: bool = True, salt: Optional[str] = None,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Execute one pipeline task synchronously on the daemon.

        ``deps_blob`` is the base64 pickle produced by
        :func:`repro.pipeline.executors.encode_deps`; the response's
        ``blob`` decodes with :func:`~repro.pipeline.executors.decode_deps`.
        This is the distributed-scheduler hot path — retries and failover
        belong to the caller, not the daemon.
        """
        message: Dict[str, Any] = {
            "op": "task", "task_id": task_id, "kind": kind,
            "params": dict(params), "deps": deps_blob, "attempt": attempt,
            "key": key, "cacheable": cacheable, "salt": salt,
        }
        if timeout is not None:
            message["timeout"] = timeout
        return self.request(message)

    def stats(self) -> Dict[str, Any]:
        """Server counters: jobs, dedup hits, pool health, store traffic."""
        return self.request({"op": "stats"})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the server to stop (``drain=False`` cancels queued jobs)."""
        return self.request({"op": "shutdown", "drain": drain})

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's progress events in emission order.

        Replays the job's history first, then yields live events until the
        stream's terminating ``{"done": true}`` line (which is consumed,
        not yielded).  Holds one connection open for the duration.
        """
        with self._connect() as sock:
            sock.sendall(protocol.encode({"op": "watch", "id": job_id}))
            stream = sock.makefile("rb")
            try:
                while True:
                    line = stream.readline(protocol.MAX_LINE_BYTES + 1)
                    if not line:
                        return
                    response = protocol.decode(line)
                    if not response.get("ok", False):
                        raise ServeError(response)
                    if response.get("done"):
                        return
                    if "event" in response:
                        yield response["event"]
            finally:
                stream.close()

    # ------------------------------------------------------------------ #
    def run(self, kind: str, params: Optional[Mapping[str, Any]] = None,
            timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit and wait: the one-call convenience for scripts."""
        ack = self.submit(kind, params)
        return self.result(ack["job_id"], timeout=timeout)


__all__ = ["Address", "Client", "ServeError"]
