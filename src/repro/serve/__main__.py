"""CLI of the serve daemon: ``python -m repro.serve --jobs N --store PATH``.

Starts a long-lived :class:`~repro.serve.server.AttackServer` on a local
TCP port (or unix socket), prints the bound address, and serves until
interrupted or a client sends ``shutdown``.  The configuration flags
mirror ``python -m repro.experiments.run`` — one server serves one
configuration, because the config salt is what keys job dedup.

Examples
--------
Serve the default (CPU-friendly) scale with four warm workers::

    python -m repro.serve --jobs 4 --store /tmp/repro-results

Probe and submit from a shell (the protocol is JSON lines)::

    printf '{"op":"ping"}\\n' | nc 127.0.0.1 PORT
    printf '{"op":"submit","job":{"experiment":"table3"}}\\n' | nc 127.0.0.1 PORT

See ``docs/SERVING.md`` for the full protocol and client guide.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
from typing import Optional

from ..experiments.context import ExperimentConfig
from ..pipeline.cli import positive_int
from ..pipeline.resilience import RetryPolicy
from .protocol import parse_address
from .server import AttackServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--jobs", type=positive_int, default=2, metavar="N",
                        help="warm worker processes (= max concurrently "
                             "running jobs)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="result-store directory (default: "
                             "<cache_dir>/results, shared with the batch "
                             "pipeline)")
    parser.add_argument("--address", default="127.0.0.1:0", metavar="ADDR",
                        help="host:port to listen on (port 0 = ephemeral), "
                             "or a unix-socket path")
    parser.add_argument("--scale", default="default",
                        choices=("default", "paper", "tiny"),
                        help="experiment scale served by this daemon")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-scenes", type=positive_int, default=1,
                        metavar="B",
                        help="scenes per attack loop inside each cell "
                             "(not salted: results are identical at any "
                             "value)")
    parser.add_argument("--attack-mode", default="whitebox",
                        choices=("whitebox", "nes", "spsa", "boundary"),
                        help="threat model of every served attack cell")
    parser.add_argument("--tensor-backend", default="numpy",
                        choices=("numpy", "torch"),
                        help="tensor backend of every served attack cell "
                             "(salted: torch results are allclose, not "
                             "bitwise, to numpy ones)")
    parser.add_argument("--query-budget", type=positive_int, default=None,
                        metavar="Q")
    parser.add_argument("--samples-per-step", type=positive_int, default=None,
                        metavar="S")
    parser.add_argument("--eot-samples", type=positive_int, default=None,
                        metavar="K")
    parser.add_argument("--retries", type=positive_int, default=3,
                        metavar="R",
                        help="attempts per job before it fails (transient "
                             "errors only)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per job attempt; on "
                             "expiry the worker is terminated and the pool "
                             "rebuilt")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="JSONL telemetry trace written by the workers")
    return parser


def build_config(args: argparse.Namespace) -> ExperimentConfig:
    """The one configuration this server instance serves."""
    knobs = dict(seed=args.seed, batch_scenes=args.batch_scenes,
                 attack_mode=args.attack_mode,
                 query_budget=args.query_budget,
                 samples_per_step=args.samples_per_step,
                 eot_samples=args.eot_samples,
                 tensor_backend=args.tensor_backend)
    factory = {"default": ExperimentConfig.default,
               "paper": ExperimentConfig.paper_scale,
               "tiny": ExperimentConfig.tiny}[args.scale]
    return factory(**knobs)


async def _serve(server: AttackServer) -> None:
    await server.start()
    address = server.address
    if isinstance(address, tuple):
        print(f"repro.serve listening on {address[0]}:{address[1]} "
              f"({server.jobs} warm workers)", flush=True)
    else:
        print(f"repro.serve listening on {address} "
              f"({server.jobs} warm workers)", flush=True)
    try:
        await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        await server.stop(drain=False)
        raise


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    host, port, unix_path = parse_address(args.address)
    retry = RetryPolicy(max_attempts=args.retries,
                        task_timeout=args.task_timeout)
    server = AttackServer(build_config(args), jobs=args.jobs,
                          store=args.store, retry=retry,
                          host=host or "127.0.0.1", port=port or 0,
                          unix_path=unix_path, trace_path=args.trace)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(server))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
