"""Wire protocol of the serve daemon: newline-delimited JSON requests.

One request per connection: the client sends a single JSON object on one
line, the server answers with one JSON object per line — exactly one line
for every operation except ``watch``, which streams events (one per line)
and terminates with a ``{"done": true, ...}`` line.  Requests and
responses are UTF-8; the framing is trivially inspectable with ``nc`` and
stream-parseable with any JSONL tooling.

Operations
----------
``ping``
    Liveness probe; returns server identity and uptime.
``submit``
    ``{"op": "submit", "job": {...}}`` — register a job (see
    :class:`~repro.serve.jobs.JobSpec.from_wire` for the job shapes).
    Returns the job id (= content key), its state, and whether the
    submission deduplicated against an in-flight job (``deduped``) or a
    completed store entry (``cached``).
``status``
    ``{"op": "status", "id": JOB}`` — JSON snapshot of one job.
``result``
    ``{"op": "result", "id": JOB, "wait": true, "timeout": SECONDS}`` —
    block (server-side) until the job finishes, then return its payload.
``cancel``
    ``{"op": "cancel", "id": JOB}`` — cancel a queued job.  A running
    worker is never preempted: cancelling a running job is refused.
``watch``
    ``{"op": "watch", "id": JOB}`` — replay the job's event history, then
    stream live events until the job finishes.
``task``
    ``{"op": "task", "task_id": ..., "kind": ..., "params": {...},
    "deps": B64, "attempt": N, "key": KEY, "cacheable": true,
    "salt": HASH, "timeout": SECONDS}`` — execute one pipeline task
    synchronously (the distributed-scheduler hot path; see
    :class:`repro.pipeline.executors.RemoteBackend`).  ``deps`` is a
    base64 pickle of the task's dependency payloads; the response carries
    the result the same way (``blob``) plus ``hit`` when it was served
    from the daemon's result store, and ``elapsed``/``stats`` when
    computed.  ``salt`` must match the daemon's config salt hash — a
    mismatch is refused (permanently) rather than silently computing
    against a different configuration.
``stats``
    Server counters: job/dedup totals, pool state, store traffic.
``shutdown``
    ``{"op": "shutdown", "drain": true}`` — stop accepting submissions,
    let in-flight jobs finish (``drain=false`` cancels queued jobs), then
    exit.

Every response carries ``"ok"``; failures carry ``"error"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Protocol revision, echoed by ``ping``; bump on incompatible changes.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (a formatted table result is
#: a few KiB; attack-cell payloads are compact by design).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Operations a server understands (mirrored by the client methods).
OPERATIONS = ("ping", "submit", "status", "result", "cancel", "watch",
              "task", "stats", "shutdown")


class ProtocolError(RuntimeError):
    """Raised on malformed frames (oversized lines, invalid JSON)."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message as one UTF-8 JSON line."""
    return (json.dumps(message, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def error_response(message: str, **extra: Any) -> Dict[str, Any]:
    response = {"ok": False, "error": message}
    response.update(extra)
    return response


def ok_response(**fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def wire_payload(payload: Any) -> Dict[str, Any]:
    """Ship a job result over JSON.

    Cell payloads are JSON-safe dicts by construction; richer results (a
    ``TableResult``) additionally carry their human-readable rendering.
    Anything unserialisable degrades to ``repr`` rather than failing the
    response.
    """
    out: Dict[str, Any] = {}
    formatted = getattr(payload, "formatted", None)
    if callable(formatted):
        try:
            out["formatted"] = formatted()
        except Exception:  # noqa: BLE001 — rendering is best-effort
            pass
    try:
        json.dumps(payload)
        out["value"] = payload
    except (TypeError, ValueError):
        try:
            out["value"] = json.loads(json.dumps(payload, default=str))
        except (TypeError, ValueError):
            out["value"] = repr(payload)
    return out


def parse_address(text: str) -> "tuple[Optional[str], Optional[int], Optional[str]]":
    """``host:port`` or a filesystem path → ``(host, port, unix_path)``."""
    if "/" in text or text.startswith("@"):
        return None, None, text
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(f"address {text!r} is neither host:port nor a path")
    return host or "127.0.0.1", int(port), None


__all__ = [
    "MAX_LINE_BYTES",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "parse_address",
    "wire_payload",
]
