"""Attack-as-a-service: a long-lived daemon over warm attack workers.

The batch CLI pays model-load, dataset-build and neighbourhood-cache
warm-up on every invocation; :mod:`repro.serve` pays them once.  A
persistent :class:`~repro.serve.server.AttackServer` owns a worker pool
whose processes keep their :class:`~repro.experiments.context.\
ExperimentContext` warm between jobs, fronted by the same
content-addressed result store as the pipeline, and deduplicates
identical submissions onto a single computation keyed by the store salt.

Modules
-------
:mod:`~repro.serve.jobs`
    Job specs, states and the salt-derived dedup key.
:mod:`~repro.serve.protocol`
    Newline-delimited JSON wire protocol (``submit`` / ``status`` /
    ``result`` / ``cancel`` / ``watch`` / ``stats`` / ``shutdown``).
:mod:`~repro.serve.events`
    The tracer bridge streaming per-step engine events to watchers.
:mod:`~repro.serve.server`
    The asyncio daemon (and :class:`~repro.serve.server.ServerThread`
    for embedding it in tests and scripts).
:mod:`~repro.serve.client`
    The blocking :class:`~repro.serve.client.Client`.

Start a daemon with ``python -m repro.serve --jobs N --store PATH``;
see ``docs/SERVING.md`` for the operational guide and
``examples/serve_client.py`` for an end-to-end embedding.
"""

from .client import Client, ServeError
from .jobs import Job, JobError, JobSpec, job_key
from .server import AttackServer, ServerThread

__all__ = [
    "AttackServer",
    "Client",
    "Job",
    "JobError",
    "JobSpec",
    "ServeError",
    "ServerThread",
    "job_key",
]
