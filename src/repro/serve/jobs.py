"""Job bookkeeping of the serving layer: specs, states, dedup keys.

A *job* is one unit of submittable work — a single executor invocation
(``kind`` + ``params``, the same vocabulary as pipeline tasks) or a whole
experiment by name (sugar for the ``experiment`` executor).  Jobs carry no
dependency payloads: the warm worker contexts own datasets and trained
models, which is exactly what makes a long-lived server cheaper than a
batch CLI run.

Every job is keyed by the same content hash the pipeline result store
uses — ``content_hash({kind, params, deps: {}, salt: config_salt(config)})``
— so the dedup guarantees are inherited rather than reinvented:

* identical submissions **share one key**, and therefore one computation
  (the server's pending-jobs map) and one stored payload;
* the salt carries the resolved compute policy, ``attack_mode``, the EOT
  knobs and the store format version, so jobs that compute different
  things can never collide (see ``docs/ARCHITECTURE.md`` for the full
  salt-rules table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..pipeline.hashing import content_hash
from ..pipeline.scheduler import config_salt

#: Job lifecycle states (terminal: done / failed / cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Executor kinds a job may not submit: they read dependency payloads,
#: which serve jobs deliberately do not carry.
_DEP_PARAMS = ("match_l2_from",)

#: Cap on the per-job event history kept for late ``watch`` subscribers.
EVENT_HISTORY_LIMIT = 1024


class JobError(ValueError):
    """Raised for malformed job specifications."""


@dataclass(frozen=True)
class JobSpec:
    """One submittable unit of work: an executor kind plus its parameters.

    Build one directly, or from the wire form via :meth:`from_wire`, which
    also accepts the ``{"experiment": "table3"}`` sugar for whole-experiment
    jobs (the ``experiment`` executor).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise JobError("job kind must be a non-empty string")
        if not isinstance(self.params, Mapping):
            raise JobError("job params must be a mapping")
        object.__setattr__(self, "params", dict(self.params))
        for name in _DEP_PARAMS:
            if name in self.params or name in dict(
                    self.params.get("attack") or {}):
                raise JobError(
                    f"job param {name!r} requires a dependency payload; "
                    f"dependency-coupled cells must run through the "
                    f"pipeline scheduler, not the serve layer")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Parse the protocol form of a job.

        Accepted shapes::

            {"experiment": "table3"}                     # whole experiment
            {"kind": "attack_cell", "params": {...}}     # one executor call
        """
        if not isinstance(payload, Mapping):
            raise JobError("job must be a JSON object")
        if "experiment" in payload:
            name = payload["experiment"]
            if not isinstance(name, str) or not name:
                raise JobError("experiment name must be a non-empty string")
            return cls(kind="experiment", params={"name": name})
        if "kind" not in payload:
            raise JobError("job needs either 'experiment' or 'kind'")
        return cls(kind=payload["kind"], params=payload.get("params") or {})

    def validate_kind(self) -> None:
        """Check the kind against the executor registry (imports plans)."""
        from ..pipeline.worker import available_executors
        known = available_executors()
        if self.kind not in known:
            raise JobError(f"unknown job kind {self.kind!r}; "
                           f"known kinds: {known}")
        if self.kind == "experiment":
            from ..experiments.plans import available_experiments
            name = self.params.get("name")
            if name not in available_experiments():
                raise JobError(f"unknown experiment {name!r}; "
                               f"choose from {available_experiments()}")

    # ------------------------------------------------------------------ #
    @property
    def cacheable(self) -> bool:
        """Whether the payload may be served from / written to the store.

        Mirrors the pipeline plan registry: experiments that measure
        wall-clock or write figure files as a side effect must re-run.
        """
        if self.kind == "experiment":
            from ..experiments.plans import _NEVER_CACHE
            return self.params.get("name") not in _NEVER_CACHE
        return True

    @property
    def label(self) -> str:
        """Human-readable id, also used as the worker-side task id."""
        if self.kind == "experiment":
            return f"experiment:{self.params.get('name')}"
        return self.kind

    def as_wire(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}


def job_key(spec: JobSpec, config: Any) -> str:
    """Content hash identifying one job under one server configuration.

    Identical to the fingerprint a dependency-free single-task pipeline
    graph would produce: the executor kind, its parameters, an empty
    dependency map, and the full config salt (compute policy, attack mode,
    EOT knobs, store format version).  Submitting the same work twice —
    from any client, at any time — therefore lands on the same key.
    """
    return content_hash({
        "kind": spec.kind,
        "params": spec.params,
        "deps": {},
        "salt": config_salt(config),
    })


class Job:
    """One deduplicated computation and its subscribers.

    Identical submissions share a single ``Job`` (and its ``job_id``, which
    *is* the content key).  All mutation happens on the server's event
    loop; snapshots are plain JSON-safe dicts.
    """

    def __init__(self, spec: JobSpec, key: str) -> None:
        self.spec = spec
        self.key = key
        self.state = QUEUED
        self.cached = False          # served straight from the result store
        self.attempts = 0
        self.submissions = 1         # how many submits landed on this job
        self.retries = 0
        self.error: Optional[str] = None
        self.elapsed: Optional[float] = None
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.cancel_requested = False
        self.payload: Any = None     # in-memory result (uncacheable jobs)
        self.events_seen = 0
        self.history: List[Dict[str, Any]] = []
        self.history_truncated = False
        self.subscribers: List[Any] = []     # asyncio.Queue per watcher
        self.done_event: Any = None          # asyncio.Event, set by server

    # ------------------------------------------------------------------ #
    @property
    def job_id(self) -> str:
        return self.key

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status view shipped to clients."""
        return {
            "job_id": self.job_id,
            "label": self.spec.label,
            "kind": self.spec.kind,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "submissions": self.submissions,
            "retries": self.retries,
            "events": self.events_seen,
            "error": self.error,
            "elapsed": self.elapsed,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
        }

    # ------------------------------------------------------------------ #
    def publish(self, event: Dict[str, Any]) -> None:
        """Fan an event out to every watcher and into the replay history.

        Must run on the server's event loop.  The history is bounded so a
        runaway per-step stream cannot grow without limit; late watchers
        are told when the replay was truncated.
        """
        self.events_seen += 1
        if len(self.history) >= EVENT_HISTORY_LIMIT:
            self.history_truncated = True
            del self.history[: EVENT_HISTORY_LIMIT // 2]
        self.history.append(event)
        for queue in list(self.subscribers):
            try:
                queue.put_nowait(event)
            except Exception:  # noqa: BLE001 — a full/closed watcher queue
                pass           # must never stall the job


__all__ = [
    "CANCELLED",
    "DONE",
    "EVENT_HISTORY_LIMIT",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobSpec",
    "job_key",
]
