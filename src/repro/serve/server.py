"""The attack-as-a-service daemon: a warm worker pool behind a socket.

:class:`AttackServer` owns the three pieces a batch CLI run pays for on
every invocation and a service pays for once:

* a **persistent worker pool** (``ProcessPoolExecutor``) whose processes
  build their :class:`~repro.experiments.context.ExperimentContext` lazily
  and keep it — datasets, trained victim models and the neighbourhood
  cache stay warm across jobs (the pool initializer is the pipeline's own
  :func:`~repro.pipeline.worker.initialize_worker`, wrapped by
  :func:`~repro.serve.events.initialize_serve_worker`);
* a **content-addressed result store** shared with the batch pipeline, so
  completed work — whoever computed it — is served back in milliseconds;
* a **job table** keyed by the store salt: identical submissions collapse
  onto one in-flight computation (pending-jobs map) or one cached payload
  (:meth:`~repro.pipeline.store.ResultStore.contains`), so N clients
  asking for the same cell cost one attack.

Failures reuse the resilience layer: transient errors (a crashed worker, a
broken pool, a wall-clock timeout) retry under a
:class:`~repro.pipeline.resilience.RetryPolicy` with deterministic
backoff, the pool is rebuilt when broken, and the client only ever sees
``queued → running → done|failed``.  Progress streams ride the telemetry
bridge (:mod:`repro.serve.events`): every engine ``attack_step`` lands in
the subscribing clients' ``watch`` streams in emission order.

The architecture follows the stateful-server-over-expensive-backend shape
of production database engines (a compiler/result cache fronting a pool of
warm backend connections); see ``docs/SERVING.md`` for the protocol and
operational guide.
"""

from __future__ import annotations

import asyncio
import base64
import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional

from ..pipeline.executors import compute_salt_hash, decode_deps
from ..pipeline.resilience import (TRANSIENT, RetryPolicy, TaskTimeoutError,
                                   classify_error, error_type_names)
from ..pipeline.scheduler import _terminate_pool, config_to_dict
from ..pipeline.store import canonical_payload_bytes, open_store
from ..pipeline.worker import run_task
from ..telemetry import get_tracer
from . import protocol
from .events import initialize_serve_worker, serve_run_task
from .jobs import (CANCELLED, DONE, FAILED, QUEUED, RUNNING, Job, JobError,
                   JobSpec, job_key)

#: Event types that terminate a ``watch`` stream.
TERMINAL_EVENTS = frozenset({"job_done", "job_failed", "job_cancelled"})

#: Default server-side wait bound of a blocking ``result`` request.
DEFAULT_RESULT_TIMEOUT = 3600.0


class AttackServer:
    """Long-lived asyncio job server over a warm attack worker pool.

    Parameters
    ----------
    config:
        The :class:`~repro.experiments.context.ExperimentConfig` every job
        runs under.  One server serves one configuration: warm worker
        state is only warm because the config never changes mid-flight,
        and the config salt is what keys the dedup guarantees.
    jobs:
        Worker process count (and the bound on concurrently running jobs).
    store:
        A :class:`~repro.pipeline.store.StoreBackend`, a path, an
        ``http(s)://`` URL of a shared store daemon (``python -m
        repro.pipeline store-serve``), or ``None`` for the config's
        default ``<cache_dir>/results`` — deliberately the same default
        as the batch pipeline, so the two share one memoisation layer.
    retry:
        :class:`~repro.pipeline.resilience.RetryPolicy`; the default gives
        every job three attempts and no wall-clock deadline.
    host / port / unix_path:
        Listening address; ``port=0`` binds an ephemeral port (see
        :attr:`address` after :meth:`start`).  ``unix_path`` switches to a
        UNIX domain socket.
    trace_path:
        Optional JSONL telemetry sink forwarded to the workers, exactly
        like a traced pipeline run.
    """

    def __init__(self, config: Any, *, jobs: int = 2,
                 store: Any = None, retry: Optional[RetryPolicy] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None,
                 trace_path: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.config = config
        self.jobs = jobs
        if store is None:
            store = os.path.join(config.cache_dir, "results")
        # A StoreBackend passes through; an ``http(s)://`` URL becomes a
        # RemoteStore, so a whole fleet of daemons can share one
        # content-addressed memoisation layer (see docs/SERVING.md).
        self.store = open_store(store)
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=3)
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._trace_path = trace_path

        self.started_at: Optional[float] = None
        self.counters: Dict[str, int] = {
            "submitted": 0, "computed": 0, "dedup_inflight": 0,
            "dedup_store": 0, "done": 0, "failed": 0, "cancelled": 0,
            "rejected": 0, "retries": 0, "timeouts": 0, "pool_rebuilds": 0,
            "events": 0, "tasks": 0, "task_hits": 0,
        }
        self._salt_hash: Optional[str] = None
        self._jobs: Dict[str, Job] = {}
        self._job_tasks: Dict[str, asyncio.Task] = {}
        self._connections: "set[asyncio.Task]" = set()
        self._barriers: Dict[Any, asyncio.Event] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock: Optional[asyncio.Lock] = None
        self._events: Any = None
        self._pump_thread: Optional[threading.Thread] = None
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None  # created in start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Any:
        """``(host, port)`` of the TCP listener, or the UNIX socket path."""
        if self._unix_path is not None:
            return self._unix_path
        return (self._host, self._port)

    @property
    def salt_hash(self) -> str:
        """Content hash of this daemon's config salt (fleet fingerprint).

        Remote dispatches carry the scheduler's salt hash; a mismatch is
        refused rather than silently computing under a different
        configuration (and poisoning a shared store).
        """
        if self._salt_hash is None:
            self._salt_hash = compute_salt_hash(self.config)
        return self._salt_hash

    def _mp_context(self):
        # Mirror the scheduler: fork on Linux (workers inherit registered
        # executors and imports), spawn elsewhere.
        methods = multiprocessing.get_all_start_methods()
        use_fork = sys.platform.startswith("linux") and "fork" in methods
        return multiprocessing.get_context("fork" if use_fork else "spawn")

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._mp_context(),
            initializer=initialize_serve_worker,
            initargs=(config_to_dict(self.config), self._trace_path,
                      self._events))

    async def start(self) -> None:
        """Bind the socket, start the pool and the event pump."""
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.jobs)
        self._pool_lock = asyncio.Lock()
        self._stopped = asyncio.Event()
        self._events = self._mp_context().Queue()
        self._pool = self._make_pool()
        self._pump_thread = threading.Thread(
            target=self._pump, name="serve-event-pump", daemon=True)
        self._pump_thread.start()
        if self._unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self._unix_path,
                limit=protocol.MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self._host, port=self._port,
                limit=protocol.MAX_LINE_BYTES)
            self._port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` request) completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown.

        ``drain=True`` lets every in-flight *and queued* job finish while
        rejecting new submissions; ``drain=False`` additionally cancels the
        jobs still queued (running workers are never preempted — their
        results are stored on completion as usual).
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if not drain:
            for job in self._jobs.values():
                if job.state == QUEUED:
                    job.cancel_requested = True
        if self._job_tasks:
            await asyncio.gather(*list(self._job_tasks.values()),
                                 return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight connections (synchronous ``task`` ops, watches)
        # write their responses before the loop dies under them —
        # otherwise a remote scheduler is left waiting on an open socket
        # until its own timeout.  New connections are already refused.
        me = asyncio.current_task()
        while True:
            # A connection accepted just before the listener closed may
            # not have taken its first handler step yet (so it has not
            # registered in ``_connections``): yield once so late
            # registrations land, then re-scan until the set drains.
            await asyncio.sleep(0)
            remaining = [task for task in self._connections
                         if task is not me and not task.done()]
            if not remaining:
                break
            await asyncio.gather(*remaining, return_exceptions=True)
        try:
            self._events.put(None)      # pump sentinel
        except Exception:  # noqa: BLE001
            pass
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # Event pump: worker queue -> loop -> per-job subscribers
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        while True:
            try:
                item = self._events.get()
            except (EOFError, OSError):
                return
            if item is None:
                return
            try:
                kind, key, event = item
            except (TypeError, ValueError):
                continue
            if kind == "event":
                self._loop.call_soon_threadsafe(self._dispatch_event, key,
                                                event)
            elif kind == "barrier":
                self._loop.call_soon_threadsafe(self._dispatch_barrier, key,
                                                event)

    def _dispatch_event(self, key: str, event: Dict[str, Any]) -> None:
        job = self._jobs.get(key)
        if job is None:
            return
        self.counters["events"] += 1
        job.publish(event)

    def _dispatch_barrier(self, key: str, attempt: int) -> None:
        barrier = self._barriers.get((key, attempt))
        if barrier is not None:
            barrier.set()

    async def _await_barrier(self, key: str, attempt: int) -> None:
        """Wait until the worker's event stream for this attempt drained.

        ``Queue.put`` in the worker is asynchronous, so the result future
        can beat the task's own progress events across the pipe; the
        barrier sent *after* the task rides the same FIFO and closes that
        race.  Bounded wait: a worker that died mid-pipe sends no barrier.
        """
        barrier = self._barriers.get((key, attempt))
        if barrier is None:
            return
        try:
            await asyncio.wait_for(barrier.wait(), timeout=5.0)
        except asyncio.TimeoutError:
            pass

    def _publish(self, job: Job, event_type: str, **fields: Any) -> None:
        """Server-side lifecycle event into the job's stream (+ tracer)."""
        event = {"type": event_type, "ts": time.time(), "job_id": job.job_id}
        event.update(fields)
        job.publish(event)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("serve_" + event_type, job=job.job_id,
                        label=job.spec.label, **fields)

    # ------------------------------------------------------------------ #
    # Job execution
    # ------------------------------------------------------------------ #
    async def _rebuild_pool(self, failed_generation: int, reason: str) -> None:
        """Replace a dead (or deliberately killed) pool exactly once.

        Concurrent jobs all observe the same failure; the generation
        counter makes the first one rebuild and the rest reuse the fresh
        pool instead of stampeding.
        """
        async with self._pool_lock:
            if self._pool_generation != failed_generation:
                return
            self._pool_generation += 1
            self.counters["pool_rebuilds"] += 1
            _terminate_pool(self._pool)
            self._pool = self._make_pool()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit("pool_rebuild", action="rebuild", reason=reason,
                            count=self.counters["pool_rebuilds"])

    async def _run_job(self, job: Job) -> None:
        try:
            await self._execute_job(job)
        finally:
            self._job_tasks.pop(job.key, None)

    async def _execute_job(self, job: Job) -> None:
        async with self._semaphore:
            if job.cancel_requested:
                job.state = CANCELLED
                job.finished_at = time.time()
                self.counters["cancelled"] += 1
                self._publish(job, "job_cancelled")
                job.done_event.set()
                return
            job.state = RUNNING
            self.counters["computed"] += 1
            self._publish(job, "job_started")
            timeout = self.retry.task_timeout
            while True:
                job.attempts += 1
                generation = self._pool_generation
                started = time.perf_counter()
                self._barriers[(job.key, job.attempts)] = asyncio.Event()
                try:
                    future = self._pool.submit(
                        serve_run_task, job.key, job.spec.label,
                        job.spec.kind, dict(job.spec.params), job.attempts)
                    (_, ok, payload_or_error, elapsed, stats,
                     error_types) = await asyncio.wait_for(
                         asyncio.wrap_future(future), timeout=timeout)
                    # The worker ran to completion: let its event stream
                    # drain before any terminal event is published.
                    await self._await_barrier(job.key, job.attempts)
                except asyncio.TimeoutError:
                    self.counters["timeouts"] += 1
                    message = (f"job {job.spec.label!r} timed out after "
                               f"{timeout:.1f}s (attempt {job.attempts}/"
                               f"{self.retry.max_attempts}); its worker "
                               f"was terminated")
                    await self._rebuild_pool(generation, "timeout")
                    ok, payload_or_error = False, message
                    elapsed, stats = time.perf_counter() - started, None
                    error_types = error_type_names(TaskTimeoutError(message))
                except asyncio.CancelledError:
                    if self._stopping:
                        raise
                    # The pool was torn down under this future (a sibling's
                    # timeout or crash cancelled its queued siblings):
                    # innocent casualty, retry on the fresh pool.
                    ok, payload_or_error = False, "worker pool was rebuilt"
                    elapsed, stats = time.perf_counter() - started, None
                    error_types = ["TransientTaskError"]
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:  # noqa: BLE001 — pool broke
                    error_types = error_type_names(error)
                    if "BrokenProcessPool" in error_types or \
                            "BrokenExecutor" in error_types:
                        await self._rebuild_pool(generation,
                                                 "worker pool broke")
                    ok, payload_or_error = False, repr(error)
                    elapsed, stats = time.perf_counter() - started, None
                finally:
                    self._barriers.pop((job.key, job.attempts), None)

                if ok:
                    self._complete_job(job, payload_or_error, elapsed, stats)
                    return
                if classify_error(error_types) == TRANSIENT and \
                        self.retry.retryable(job.attempts):
                    job.retries += 1
                    self.counters["retries"] += 1
                    delay = self.retry.delay(job.key, job.attempts)
                    self._publish(job, "job_retry", attempt=job.attempts,
                                  max_attempts=self.retry.max_attempts,
                                  error=(error_types or ["unknown"])[0],
                                  delay_s=delay)
                    await asyncio.sleep(delay)
                    continue
                job.state = FAILED
                job.error = str(payload_or_error)
                job.elapsed = elapsed
                job.finished_at = time.time()
                self.counters["failed"] += 1
                self._publish(job, "job_failed", error=job.error,
                              attempts=job.attempts)
                job.done_event.set()
                return

    def _complete_job(self, job: Job, payload: Any, elapsed: float,
                      stats: Optional[Dict[str, Any]]) -> None:
        if job.spec.cacheable:
            metadata = {"task_id": job.spec.label, "kind": job.spec.kind,
                        "params": dict(job.spec.params), "elapsed": elapsed,
                        "served_by": "repro.serve"}
            if stats:
                metadata["stats"] = stats
            self.store.put(job.key, payload, metadata=metadata)
        else:
            job.payload = payload
        job.state = DONE
        job.elapsed = elapsed
        job.finished_at = time.time()
        self.counters["done"] += 1
        self._publish(job, "job_done", elapsed=elapsed, attempts=job.attempts)
        job.done_event.set()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def _submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._stopping:
            self.counters["rejected"] += 1
            return protocol.error_response("server is shutting down",
                                           state="stopping")
        try:
            spec = JobSpec.from_wire(payload)
            spec.validate_kind()
        except JobError as error:
            return protocol.error_response(str(error))
        key = job_key(spec, self.config)
        self.counters["submitted"] += 1

        existing = self._jobs.get(key)
        if existing is not None and existing.state not in (FAILED, CANCELLED):
            # In-flight (or already completed) duplicate: one computation.
            existing.submissions += 1
            self.counters["dedup_inflight"] += 1
            return protocol.ok_response(job_id=existing.job_id,
                                        state=existing.state,
                                        deduped=True, cached=existing.cached)

        job = Job(spec, key) if existing is None else existing
        if existing is not None:        # resubmission of a failed job
            job.submissions += 1
            job.state = QUEUED
            job.error = None
            job.cancel_requested = False
        job.done_event = asyncio.Event()
        self._jobs[key] = job

        if spec.cacheable and self.store.contains(key, count=False):
            # Completed dedup: somebody (this server, an earlier run, the
            # batch pipeline) already stored this exact computation.
            job.state = DONE
            job.cached = True
            job.finished_at = time.time()
            self.counters["dedup_store"] += 1
            self.counters["done"] += 1
            self._publish(job, "job_done", cached=True)
            job.done_event.set()
            return protocol.ok_response(job_id=job.job_id, state=job.state,
                                        deduped=False, cached=True)

        self._publish(job, "job_queued", label=spec.label)
        self._job_tasks[key] = self._loop.create_task(self._run_job(job))
        return protocol.ok_response(job_id=job.job_id, state=job.state,
                                    deduped=False, cached=False)

    def _get_job(self, message: Dict[str, Any]) -> Job:
        job = self._jobs.get(str(message.get("id", "")))
        if job is None:
            raise JobError(f"unknown job {message.get('id')!r}")
        return job

    async def _result(self, job: Job, wait: bool,
                      timeout: Optional[float]) -> Dict[str, Any]:
        if wait and not job.finished:
            try:
                await asyncio.wait_for(
                    job.done_event.wait(),
                    timeout=timeout if timeout else DEFAULT_RESULT_TIMEOUT)
            except asyncio.TimeoutError:
                return protocol.error_response(
                    "timed out waiting for the job", state=job.state,
                    job_id=job.job_id)
        if job.state != DONE:
            return protocol.error_response(
                job.error or f"job is {job.state}", state=job.state,
                job_id=job.job_id)
        if job.payload is not None:
            payload = job.payload
        else:
            try:
                payload = self.store.get(job.key)
            except KeyError as error:
                return protocol.error_response(
                    f"stored result vanished or was quarantined: {error}",
                    state=job.state, job_id=job.job_id)
        response = protocol.ok_response(job_id=job.job_id, state=job.state,
                                        cached=job.cached,
                                        result=protocol.wire_payload(payload))
        return response

    def _cancel(self, job: Job) -> Dict[str, Any]:
        if job.finished:
            return protocol.error_response(f"job already {job.state}",
                                           state=job.state)
        if job.state == RUNNING:
            return protocol.error_response(
                "job is running; a warm worker is never preempted",
                state=job.state)
        job.cancel_requested = True
        return protocol.ok_response(job_id=job.job_id, state=job.state,
                                    cancelling=True)

    async def _task(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one pipeline task synchronously (the ``task`` op).

        The distributed scheduler's hot path: one attempt on the warm
        pool, no server-side retry — retry, backoff and host failover are
        the dispatching scheduler's job, and double-retrying here would
        multiply attempt budgets.  Cacheable results are written to this
        daemon's store and returned as a base64 pickle blob either way;
        a store hit skips the pool entirely.
        """
        if self._stopping:
            self.counters["rejected"] += 1
            return protocol.error_response("server is shutting down",
                                           state="stopping",
                                           error_types=["TransientTaskError"])
        salt = message.get("salt")
        if salt is not None and salt != self.salt_hash:
            return protocol.error_response(
                f"config salt mismatch: this daemon runs {self.salt_hash}, "
                f"the scheduler sent {salt}; point --workers at daemons "
                f"started with the same configuration",
                error_types=["ConfigSaltMismatch"])
        task_id = str(message.get("task_id", ""))
        kind = str(message.get("kind", ""))
        params = message.get("params") or {}
        attempt = int(message.get("attempt", 1))
        key = message.get("key")
        cacheable = bool(message.get("cacheable", True))
        self.counters["tasks"] += 1
        if key and cacheable:
            try:
                blob = await asyncio.to_thread(self.store.get_bytes, key)
            except KeyError:
                pass        # absent (or quarantined): compute it
            else:
                self.counters["task_hits"] += 1
                return protocol.ok_response(
                    hit=True, blob=base64.b64encode(blob).decode("ascii"),
                    elapsed=0.0)
        try:
            deps = decode_deps(message.get("deps"))
        except Exception as error:  # noqa: BLE001 — malformed blob
            return protocol.error_response(
                f"undecodable deps blob: {error!r}",
                error_types=["TaskPayloadError"])
        timeout = message.get("timeout") or self.retry.task_timeout
        async with self._semaphore:
            generation = self._pool_generation
            started = time.perf_counter()
            try:
                future = self._pool.submit(run_task, task_id, kind,
                                           dict(params), deps, attempt)
                (_, ok, payload_or_error, elapsed, stats,
                 error_types) = await asyncio.wait_for(
                     asyncio.wrap_future(future), timeout=timeout)
            except asyncio.TimeoutError:
                self.counters["timeouts"] += 1
                text = (f"task {task_id!r} timed out after {timeout:.1f}s "
                        f"on this worker; its process was terminated")
                await self._rebuild_pool(generation, "timeout")
                return protocol.error_response(
                    text, elapsed=time.perf_counter() - started,
                    error_types=error_type_names(TaskTimeoutError(text)))
            except asyncio.CancelledError:
                if self._stopping:
                    raise
                return protocol.error_response(
                    "worker pool was rebuilt under this task",
                    elapsed=time.perf_counter() - started,
                    error_types=["TransientTaskError"])
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 — pool broke
                names = error_type_names(error)
                if "BrokenProcessPool" in names or "BrokenExecutor" in names:
                    await self._rebuild_pool(generation, "worker pool broke")
                return protocol.error_response(
                    repr(error), elapsed=time.perf_counter() - started,
                    error_types=names)
        if not ok:
            return protocol.error_response(str(payload_or_error),
                                           elapsed=elapsed,
                                           error_types=error_types)
        blob = canonical_payload_bytes(payload_or_error)
        if key and cacheable:
            metadata = {"task_id": task_id, "kind": kind,
                        "params": dict(params), "elapsed": elapsed,
                        "served_by": "repro.serve"}
            if stats:
                metadata["stats"] = stats
            await asyncio.to_thread(self.store.put_bytes, key, blob,
                                    metadata)
        return protocol.ok_response(
            hit=False, blob=base64.b64encode(blob).decode("ascii"),
            elapsed=elapsed, stats=stats)

    def _stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        store_stats = dict(self.store.session_stats())
        store_stats["root"] = self.store.root
        return protocol.ok_response(
            server="repro.serve", version=protocol.PROTOCOL_VERSION,
            pid=os.getpid(),
            uptime_s=(time.time() - self.started_at
                      if self.started_at else 0.0),
            jobs=dict(self.counters), states=states,
            pool={"workers": self.jobs,
                  "generation": self._pool_generation,
                  "rebuilds": self.counters["pool_rebuilds"],
                  "task_timeout": self.retry.task_timeout,
                  "max_attempts": self.retry.max_attempts},
            store=store_stats)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        connection = asyncio.current_task()
        if connection is not None:
            self._connections.add(connection)
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                message = protocol.decode(line)
            except protocol.ProtocolError as error:
                writer.write(protocol.encode(
                    protocol.error_response(str(error))))
                return
            await self._dispatch(message, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            if connection is not None:
                self._connections.discard(connection)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, message: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = message.get("op")
        try:
            if op == "ping":
                response = protocol.ok_response(
                    server="repro.serve", version=protocol.PROTOCOL_VERSION,
                    pid=os.getpid(),
                    uptime_s=(time.time() - self.started_at
                              if self.started_at else 0.0))
            elif op == "submit":
                response = self._submit(message.get("job") or {})
            elif op == "status":
                response = protocol.ok_response(
                    **self._get_job(message).snapshot())
            elif op == "result":
                response = await self._result(
                    self._get_job(message),
                    wait=bool(message.get("wait", True)),
                    timeout=message.get("timeout"))
            elif op == "cancel":
                response = self._cancel(self._get_job(message))
            elif op == "task":
                response = await self._task(message)
            elif op == "stats":
                response = self._stats()
            elif op == "watch":
                await self._watch(self._get_job(message), writer)
                return
            elif op == "shutdown":
                drain = bool(message.get("drain", True))
                self._loop.create_task(self.stop(drain=drain))
                response = protocol.ok_response(stopping=True, drain=drain)
            else:
                response = protocol.error_response(
                    f"unknown op {op!r}; expected one of "
                    f"{protocol.OPERATIONS}")
        except JobError as error:
            response = protocol.error_response(str(error))
        writer.write(protocol.encode(response))

    async def _watch(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Stream the job's events: history replay, then live tail."""
        queue: asyncio.Queue = asyncio.Queue()
        # Snapshot + subscribe without awaiting in between: the event loop
        # is single-threaded, so no event can slip into the gap.
        backlog = list(job.history)
        finished = job.finished
        if not finished:
            job.subscribers.append(queue)
        try:
            if job.history_truncated:
                writer.write(protocol.encode(protocol.ok_response(
                    event={"type": "history_truncated"})))
            terminal_seen = False
            for event in backlog:
                writer.write(protocol.encode(protocol.ok_response(event=event)))
                terminal_seen |= event.get("type") in TERMINAL_EVENTS
            await writer.drain()
            while not terminal_seen and not finished:
                event = await queue.get()
                writer.write(protocol.encode(protocol.ok_response(event=event)))
                await writer.drain()
                terminal_seen = event.get("type") in TERMINAL_EVENTS
            writer.write(protocol.encode(protocol.ok_response(
                done=True, state=job.state, job_id=job.job_id)))
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)


class ServerThread:
    """Run an :class:`AttackServer` on a background thread.

    The blocking entry point of tests, the example client and the serve
    benchmark: ``start()`` returns once the socket is bound (so
    :attr:`address` is immediately connectable), ``stop()`` drains and
    joins.  Usable as a context manager::

        with ServerThread(AttackServer(config, jobs=2)) as address:
            client = Client(address)
            ...
    """

    def __init__(self, server: AttackServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 — surfaced in start()
            self._error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.serve_forever())
        finally:
            loop.close()

    def start(self) -> Any:
        """Start the server; returns its bound :attr:`AttackServer.address`."""
        self._thread = threading.Thread(target=self._run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self.server.address

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Gracefully stop the server and join its thread."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self._loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 — loop may already be closing
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> Any:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["AttackServer", "DEFAULT_RESULT_TIMEOUT", "ServerThread",
           "TERMINAL_EVENTS"]
