"""Rendering of scenes and segmentation maps.

The paper's Figures 1, 3, 4 and 5 show the original scene, the perturbed
scene, and their segmentation results side by side.  Without a GUI or image
libraries, this module renders orthographic top-down projections of a point
cloud either as ASCII art (for quick terminal inspection) or as binary PPM
images (viewable with any image tool), colouring points by RGB or by class.
"""

from __future__ import annotations

import os
from typing import Sequence, Tuple

import numpy as np

# A qualitative palette with enough entries for the 13 S3DIS classes.
LABEL_PALETTE = np.array([
    [141, 211, 199], [255, 255, 179], [190, 186, 218], [251, 128, 114],
    [128, 177, 211], [253, 180, 98], [179, 222, 105], [252, 205, 229],
    [217, 217, 217], [188, 128, 189], [204, 235, 197], [255, 237, 111],
    [31, 120, 180], [227, 26, 28], [106, 61, 154], [255, 127, 0],
], dtype=np.float64)

_ASCII_RAMP = "abcdefghijklmnopqrstuvwxyz0123456789"


def label_colors(labels: np.ndarray) -> np.ndarray:
    """Map integer labels to palette RGB colours (0–255)."""
    labels = np.asarray(labels, dtype=np.int64)
    return LABEL_PALETTE[labels % len(LABEL_PALETTE)]


def project_top_down(coords: np.ndarray, width: int, height: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project points to integer pixel coordinates (top-down orthographic).

    Returns ``(columns, rows, depth_order)`` where ``depth_order`` sorts the
    points from lowest to highest so later (higher) points overwrite earlier
    ones in the rasterisation.
    """
    coords = np.asarray(coords, dtype=np.float64)
    xy = coords[:, :2]
    low = xy.min(axis=0)
    span = np.maximum(xy.max(axis=0) - low, 1e-9)
    unit = (xy - low) / span
    columns = np.clip((unit[:, 0] * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((1.0 - unit[:, 1]) * (height - 1)).astype(int), 0, height - 1)
    depth_order = np.argsort(coords[:, 2])
    return columns, rows, depth_order


def rasterize(coords: np.ndarray, colors: np.ndarray,
              width: int = 96, height: int = 48,
              background: float = 255.0) -> np.ndarray:
    """Rasterise a cloud into an ``(height, width, 3)`` RGB image array."""
    colors = np.asarray(colors, dtype=np.float64)
    columns, rows, order = project_top_down(coords, width, height)
    image = np.full((height, width, 3), background, dtype=np.float64)
    image[rows[order], columns[order]] = colors[order]
    return image


def render_ascii(coords: np.ndarray, labels: np.ndarray,
                 width: int = 72, height: int = 28) -> str:
    """Render a labelled cloud as ASCII art (one character class per label)."""
    labels = np.asarray(labels, dtype=np.int64)
    columns, rows, order = project_top_down(coords, width, height)
    canvas = np.full((height, width), " ", dtype="<U1")
    glyphs = np.array(list(_ASCII_RAMP))
    canvas[rows[order], columns[order]] = glyphs[labels[order] % len(glyphs)]
    return "\n".join("".join(row) for row in canvas)


def save_ppm(path: str, image: np.ndarray) -> str:
    """Write an ``(H, W, 3)`` float/int RGB array as a binary PPM file."""
    image = np.clip(np.asarray(image), 0, 255).astype(np.uint8)
    height, width, _ = image.shape
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return path


def compose_panels(panels: Sequence[np.ndarray], columns: int = 2,
                   padding: int = 2, background: float = 255.0) -> np.ndarray:
    """Arrange equally sized images into a grid (the 4-panel figure layout)."""
    if not panels:
        raise ValueError("compose_panels requires at least one panel")
    height, width, _ = panels[0].shape
    rows = int(np.ceil(len(panels) / columns))
    canvas = np.full((rows * height + (rows - 1) * padding,
                      columns * width + (columns - 1) * padding, 3),
                     background, dtype=np.float64)
    for index, panel in enumerate(panels):
        if panel.shape != panels[0].shape:
            raise ValueError("all panels must have the same shape")
        row, col = divmod(index, columns)
        top = row * (height + padding)
        left = col * (width + padding)
        canvas[top:top + height, left:left + width] = panel
    return canvas


__all__ = [
    "LABEL_PALETTE",
    "label_colors",
    "project_top_down",
    "rasterize",
    "render_ascii",
    "save_ppm",
    "compose_panels",
]
