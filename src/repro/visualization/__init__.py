"""``repro.visualization`` — scene and segmentation rendering (Figures 1, 3-5).

Dependency-free rendering of point cloud scenes and their
segmentations: top-down orthographic projection and rasterisation into
PPM images (:func:`rasterize`, :func:`save_ppm` — no matplotlib
required), multi-panel composition for clean-vs-adversarial comparisons
(:func:`compose_panels`, :func:`segmentation_comparison`,
:func:`attack_figure`), and a terminal-friendly :func:`render_ascii`.
The ``figures`` experiment drives these to regenerate the paper's
qualitative panels; because it writes image files as a side effect it is
excluded from the result store (see ``docs/EXPERIMENTS.md``).
"""

from .figures import FigureArtifacts, attack_figure, segmentation_comparison
from .render import (
    LABEL_PALETTE,
    compose_panels,
    label_colors,
    project_top_down,
    rasterize,
    render_ascii,
    save_ppm,
)

__all__ = [
    "LABEL_PALETTE",
    "label_colors",
    "project_top_down",
    "rasterize",
    "render_ascii",
    "save_ppm",
    "compose_panels",
    "FigureArtifacts",
    "attack_figure",
    "segmentation_comparison",
]
