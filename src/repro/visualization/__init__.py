"""``repro.visualization`` — scene and segmentation rendering (Figures 1, 3-5)."""

from .figures import FigureArtifacts, attack_figure, segmentation_comparison
from .render import (
    LABEL_PALETTE,
    compose_panels,
    label_colors,
    project_top_down,
    rasterize,
    render_ascii,
    save_ppm,
)

__all__ = [
    "LABEL_PALETTE",
    "label_colors",
    "project_top_down",
    "rasterize",
    "render_ascii",
    "save_ppm",
    "compose_panels",
    "FigureArtifacts",
    "attack_figure",
    "segmentation_comparison",
]
