"""Figure builders reproducing the layout of the paper's Figures 1, 3, 4 and 5.

Each figure shows, for one scene: the original point cloud coloured by its
real RGB values, its segmentation, the perturbed cloud and the perturbed
segmentation.  The output is a 4-panel PPM image plus ASCII previews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.config import AttackResult
from .render import compose_panels, label_colors, rasterize, render_ascii, save_ppm


@dataclass
class FigureArtifacts:
    """Paths and ASCII previews produced for one figure."""

    image_path: Optional[str]
    ascii_original: str
    ascii_adversarial: str
    accuracy_before: float
    accuracy_after: float


def attack_figure(result: AttackResult, path: Optional[str] = None,
                  width: int = 96, height: int = 48,
                  color_scale: float = 255.0) -> FigureArtifacts:
    """Build the 4-panel original/perturbed scene + segmentation figure.

    Parameters
    ----------
    result:
        The attack result to visualise (normalised model-space values).
    path:
        Where to save the PPM image; when ``None`` only ASCII previews are
        produced.
    color_scale:
        Factor converting normalised colours back to displayable 0–255 values.
    """
    original_rgb = np.clip(result.original_colors * color_scale, 0, 255)
    adversarial_rgb = np.clip(result.adversarial_colors * color_scale, 0, 255)

    panels = [
        rasterize(result.original_coords, original_rgb, width, height),
        rasterize(result.original_coords, label_colors(result.clean_prediction),
                  width, height),
        rasterize(result.adversarial_coords, adversarial_rgb, width, height),
        rasterize(result.adversarial_coords,
                  label_colors(result.adversarial_prediction), width, height),
    ]
    image_path = None
    if path is not None:
        image_path = save_ppm(path, compose_panels(panels, columns=2))

    return FigureArtifacts(
        image_path=image_path,
        ascii_original=render_ascii(result.original_coords, result.clean_prediction),
        ascii_adversarial=render_ascii(result.adversarial_coords,
                                       result.adversarial_prediction),
        accuracy_before=result.outcome.clean_accuracy,
        accuracy_after=result.outcome.accuracy,
    )


def segmentation_comparison(coords: np.ndarray, prediction: np.ndarray,
                            labels: np.ndarray, path: Optional[str] = None,
                            width: int = 96, height: int = 48) -> Dict[str, str]:
    """Ground truth vs. prediction panels for a clean cloud."""
    panels = [
        rasterize(coords, label_colors(labels), width, height),
        rasterize(coords, label_colors(prediction), width, height),
    ]
    output: Dict[str, str] = {
        "ascii_ground_truth": render_ascii(coords, labels),
        "ascii_prediction": render_ascii(coords, prediction),
    }
    if path is not None:
        output["image_path"] = save_ppm(path, compose_panels(panels, columns=2))
    return output


__all__ = ["FigureArtifacts", "attack_figure", "segmentation_comparison"]
