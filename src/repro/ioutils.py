"""Small filesystem helpers shared across subsystems."""

from __future__ import annotations

import os
import tempfile
from typing import BinaryIO, Callable


def atomic_write(path: str, writer: Callable[[BinaryIO], None]) -> None:
    """Write a file atomically: temp file in the target directory + rename.

    ``writer`` receives the open binary handle.  Concurrent writers (e.g.
    pipeline workers racing to cache the same checkpoint or store entry)
    can never leave a truncated file behind for a third process to read:
    readers see either the old content or the complete new content.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            writer(handle)
        # mkstemp creates 0600 files; restore the ordinary umask-derived
        # mode so shared caches stay readable by other users.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    atomic_write(path, lambda handle: handle.write(data))


__all__ = ["atomic_write", "atomic_write_bytes"]
