"""Nearest-neighbour search utilities.

All search routines operate on plain NumPy coordinate arrays and return
integer index arrays; they are used both inside the models (to build
aggregation neighbourhoods) and by the attack framework (smoothness penalty,
SOR defense).

Performance notes (the attack hot path calls these every step):

* every kd-tree query runs with ``workers=-1`` so SciPy fans the query
  points out over all cores;
* callers that issue several queries against the same point set (different
  ``k``, different dilations) can build the tree once with
  :func:`build_tree` and pass it back in — the
  :class:`repro.accel.cache.NeighborhoodCache` does exactly that;
* the ``include_self=False`` clean-up is fully vectorised (the seed
  implementation looped over rows in Python).
"""

from __future__ import annotations

import os

import numpy as np
from scipy.spatial import cKDTree

#: Thread fan-out of cKDTree.query: -1 = all cores (right for a single
#: process).  The pipeline sets this to 1 inside its worker processes so N
#: attack workers do not each spawn an all-core query pool; override
#: explicitly with REPRO_KNN_WORKERS.
_QUERY_WORKERS = int(os.environ.get("REPRO_KNN_WORKERS", "-1"))


def set_query_workers(workers: int) -> None:
    """Set the thread count used by every kd-tree query in this process."""
    global _QUERY_WORKERS
    _QUERY_WORKERS = int(workers)


def query_workers() -> int:
    return _QUERY_WORKERS


def build_tree(points: np.ndarray) -> cKDTree:
    """Build a kd-tree over ``(N, D)`` points (reusable across queries)."""
    return cKDTree(np.asarray(points, dtype=np.float64))


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between two point sets.

    Parameters
    ----------
    a:
        ``(N, D)`` array.
    b:
        ``(M, D)`` array.

    Returns
    -------
    ``(N, M)`` array of squared distances.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a2 = np.sum(a ** 2, axis=1)[:, None]
    b2 = np.sum(b ** 2, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * a @ b.T
    return np.maximum(d2, 0.0)


def knn_indices(points: np.ndarray, k: int, queries: np.ndarray | None = None,
                include_self: bool = True,
                tree: cKDTree | None = None) -> np.ndarray:
    """Indices of the ``k`` nearest neighbours of each query point.

    Parameters
    ----------
    points:
        ``(N, D)`` reference point set.
    k:
        Number of neighbours to return.  Clamped to ``N``.
    queries:
        ``(M, D)`` query points.  Defaults to ``points`` (self-neighbourhoods).
    include_self:
        When querying a point set against itself, whether the point itself may
        appear in its own neighbour list.
    tree:
        Optional pre-built kd-tree over ``points`` (see :func:`build_tree`);
        when several queries hit the same point set, building the tree once
        and passing it in avoids the dominant construction cost.

    Returns
    -------
    ``(M, k)`` integer array.
    """
    points = np.asarray(points, dtype=np.float64)
    self_query = queries is None
    queries = points if self_query else np.asarray(queries, dtype=np.float64)
    n = points.shape[0]
    k = min(k, n if (include_self or not self_query) else n - 1)
    k = max(k, 1)

    if tree is None:
        tree = cKDTree(points)
    if self_query and not include_self:
        wide_k = min(k + 1, n)
        _, idx = tree.query(queries, k=wide_k, workers=_QUERY_WORKERS)
        idx = np.atleast_2d(idx)
        m = queries.shape[0]
        if wide_k == 1:
            # Degenerate single-point cloud: the only neighbour is the point
            # itself; return it rather than crash.
            return idx.reshape(m, 1)[:, :1].astype(np.int64)
        # Drop each row's own index where present, else the furthest column
        # (equivalent to the seed's per-row Python filter, vectorised).
        self_hits = idx == np.arange(m)[:, None]
        drop = np.where(self_hits.any(axis=1), self_hits.argmax(axis=1),
                        wide_k - 1)
        keep = np.ones(idx.shape, dtype=bool)
        keep[np.arange(m), drop] = False
        return idx[keep].reshape(m, wide_k - 1)[:, :k].astype(np.int64)
    _, idx = tree.query(queries, k=k, workers=_QUERY_WORKERS)
    idx = np.atleast_2d(idx)
    if k == 1 and idx.shape != (queries.shape[0], 1):
        idx = idx.reshape(-1, 1)
    return idx.astype(np.int64)


def knn_indices_batch(points: np.ndarray, k: int,
                      queries: np.ndarray | None = None) -> np.ndarray:
    """Batched :func:`knn_indices` for arrays of shape ``(B, N, D)``.

    One tree is built per batch item and queried for the whole item at once
    (the per-query fan-out happens inside SciPy with ``workers=-1``).
    """
    points = np.asarray(points, dtype=np.float64)
    if queries is None:
        return np.stack([knn_indices(points[b], k) for b in range(points.shape[0])])
    queries = np.asarray(queries, dtype=np.float64)
    return np.stack([
        knn_indices(points[b], k, queries[b]) for b in range(points.shape[0])
    ])


def dilated_knn_indices(points: np.ndarray, k: int, dilation: int = 1,
                        rng: np.random.Generator | None = None,
                        stochastic: bool = False,
                        tree: cKDTree | None = None) -> np.ndarray:
    """Dilated k-NN as used by DeepGCN/ResGCN.

    The ``k * dilation`` nearest neighbours are computed and every
    ``dilation``-th one is kept, enlarging the receptive field without
    increasing ``k``.  With ``stochastic=True`` a random subset of size ``k``
    is drawn instead (the paper's ResGCN-28 uses stochastic epsilon 0.2).
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    wide_k = min(k * max(dilation, 1), n)
    idx = knn_indices(points, wide_k, tree=tree)
    if dilation <= 1:
        return idx[:, :k]
    if stochastic:
        rng = rng or np.random.default_rng(0)
        choice = np.sort(rng.choice(wide_k, size=min(k, wide_k), replace=False))
        return idx[:, choice]
    return idx[:, ::dilation][:, :k]


def ball_query(points: np.ndarray, centroids: np.ndarray, radius: float,
               max_samples: int) -> np.ndarray:
    """Group points within ``radius`` of each centroid (PointNet++ grouping).

    Each centroid receives exactly ``max_samples`` neighbour indices; when a
    ball contains fewer points, the first in-ball index is repeated, matching
    the reference PointNet++ implementation.
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    d2 = pairwise_squared_distances(centroids, points)
    r2 = radius * radius
    order = np.argsort(d2, axis=1)
    sorted_d2 = np.take_along_axis(d2, order, axis=1)
    result = np.empty((centroids.shape[0], max_samples), dtype=np.int64)
    for row in range(centroids.shape[0]):
        in_ball = order[row][sorted_d2[row] <= r2]
        if in_ball.size == 0:
            in_ball = order[row][:1]
        if in_ball.size >= max_samples:
            result[row] = in_ball[:max_samples]
        else:
            padding = np.full(max_samples - in_ball.size, in_ball[0], dtype=np.int64)
            result[row] = np.concatenate([in_ball, padding])
    return result


__all__ = [
    "build_tree",
    "set_query_workers",
    "query_workers",
    "pairwise_squared_distances",
    "knn_indices",
    "knn_indices_batch",
    "dilated_knn_indices",
    "ball_query",
]
