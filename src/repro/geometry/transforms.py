"""Per-model input normalisation schemes.

Section V-A of the paper describes how each pre-trained model normalises its
input differently:

* **PointNet++** — coordinates scaled to ``[0, 3]``, colours to ``[0, 1]``;
* **ResGCN-28** — coordinates scaled to ``[-1, 1]``, colours to ``[0, 1]``;
* **RandLA-Net** — clouds resized by random duplication/selection, colours to
  ``[0, 1]``.

The transferability experiment (Table IX, Section V-G) requires mapping
perturbed fields between these ranges, which :func:`remap_range` implements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NormalizationSpec:
    """Value ranges a model expects for coordinates and colours."""

    coord_low: float
    coord_high: float
    color_low: float = 0.0
    color_high: float = 1.0

    @property
    def coord_range(self) -> tuple[float, float]:
        return (self.coord_low, self.coord_high)

    @property
    def color_range(self) -> tuple[float, float]:
        return (self.color_low, self.color_high)


POINTNET2_SPEC = NormalizationSpec(coord_low=0.0, coord_high=3.0)
RESGCN_SPEC = NormalizationSpec(coord_low=-1.0, coord_high=1.0)
RANDLANET_SPEC = NormalizationSpec(coord_low=0.0, coord_high=1.0)

MODEL_SPECS = {
    "pointnet2": POINTNET2_SPEC,
    "resgcn": RESGCN_SPEC,
    "randlanet": RANDLANET_SPEC,
}


def normalize_to_range(values: np.ndarray, low: float, high: float,
                       axis: int | None = None) -> np.ndarray:
    """Affinely rescale ``values`` so that its min/max map to ``[low, high]``.

    Degenerate (constant) inputs map to the midpoint of the target range.
    """
    values = np.asarray(values, dtype=np.float64)
    v_min = values.min(axis=axis, keepdims=axis is not None)
    v_max = values.max(axis=axis, keepdims=axis is not None)
    span = v_max - v_min
    midpoint = 0.5 * (low + high)
    with np.errstate(divide="ignore", invalid="ignore"):
        unit = np.where(span > 0, (values - v_min) / np.where(span > 0, span, 1.0), 0.5)
    scaled = low + unit * (high - low)
    return np.where(np.broadcast_to(span > 0, scaled.shape), scaled, midpoint)


def normalize_colors(colors: np.ndarray, spec: NormalizationSpec) -> np.ndarray:
    """Map raw 0–255 colour channels to the model's colour range."""
    colors = np.asarray(colors, dtype=np.float64)
    unit = np.clip(colors / 255.0, 0.0, 1.0)
    low, high = spec.color_range
    return low + unit * (high - low)


def normalize_coords(coords: np.ndarray, spec: NormalizationSpec) -> np.ndarray:
    """Map raw metric coordinates to the model's coordinate range (per cloud)."""
    return normalize_to_range(coords, spec.coord_low, spec.coord_high, axis=None)


def remap_range(values: np.ndarray, source: tuple[float, float],
                target: tuple[float, float]) -> np.ndarray:
    """Affinely map values from ``source`` range to ``target`` range.

    This is the "extra step to map the attacked fields to the same range"
    used when transferring adversarial examples between ResGCN (coords in
    ``[-1, 1]``) and PointNet++ (coords in ``[0, 3]``) in Section V-G.
    """
    src_low, src_high = source
    dst_low, dst_high = target
    if src_high == src_low:
        raise ValueError("source range must have non-zero width")
    values = np.asarray(values, dtype=np.float64)
    unit = (values - src_low) / (src_high - src_low)
    return dst_low + unit * (dst_high - dst_low)


def denormalize_colors(colors: np.ndarray, spec: NormalizationSpec) -> np.ndarray:
    """Inverse of :func:`normalize_colors` — back to 0–255 pixel values."""
    low, high = spec.color_range
    unit = (np.asarray(colors, dtype=np.float64) - low) / (high - low)
    return np.clip(unit, 0.0, 1.0) * 255.0


__all__ = [
    "NormalizationSpec",
    "POINTNET2_SPEC",
    "RESGCN_SPEC",
    "RANDLANET_SPEC",
    "MODEL_SPECS",
    "normalize_to_range",
    "normalize_colors",
    "normalize_coords",
    "remap_range",
    "denormalize_colors",
]
