"""Point-sampling strategies used by the three PCSS model families.

The paper emphasises (Section II-A and Finding 1) that the *sampling step* of
each model is what makes coordinate perturbations hard to control: PointNet++
uses farthest-point sampling, ResGCN aggregates k-NN neighbourhoods, and
RandLA-Net uses random sampling.  These routines implement those steps.
"""

from __future__ import annotations

import numpy as np

from .knn import pairwise_squared_distances


def farthest_point_sampling(points: np.ndarray, num_samples: int,
                            seed: int | None = 0) -> np.ndarray:
    """Iterative farthest-point sampling (FPS).

    Parameters
    ----------
    points:
        ``(N, 3)`` coordinates.
    num_samples:
        Number of points to keep (clamped to ``N``).
    seed:
        Seed selecting the initial point; ``None`` starts from point 0.

    Returns
    -------
    ``(num_samples,)`` integer indices into ``points``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    num_samples = min(num_samples, n)
    selected = np.empty(num_samples, dtype=np.int64)
    rng = np.random.default_rng(seed) if seed is not None else None
    selected[0] = int(rng.integers(n)) if rng is not None else 0
    min_d2 = np.sum((points - points[selected[0]]) ** 2, axis=1)
    min_d2[selected[0]] = -np.inf          # never pick the same index twice
    for i in range(1, num_samples):
        selected[i] = int(np.argmax(min_d2))
        d2 = np.sum((points - points[selected[i]]) ** 2, axis=1)
        min_d2 = np.minimum(min_d2, d2)
        min_d2[selected[: i + 1]] = -np.inf
    return selected


def random_sampling(num_points: int, num_samples: int,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform random sub-sampling without replacement (RandLA-Net style)."""
    rng = rng or np.random.default_rng(0)
    num_samples = min(num_samples, num_points)
    return np.sort(rng.choice(num_points, size=num_samples, replace=False))


def grid_subsampling(points: np.ndarray, cell_size: float) -> np.ndarray:
    """Keep one representative point per voxel of size ``cell_size``.

    Used as a pre-processing option for very large outdoor clouds
    (Semantic3D-style).  Returns the indices of the kept points (the point
    closest to each occupied voxel centre).
    """
    points = np.asarray(points, dtype=np.float64)
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    voxel = np.floor(points / cell_size).astype(np.int64)
    _, first_indices = np.unique(voxel, axis=0, return_index=True)
    return np.sort(first_indices)


def duplicate_to_size(num_points: int, target: int,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Indices that resize a cloud to exactly ``target`` points.

    RandLA-Net "regenerates the point clouds ... by randomly duplicating and
    selecting the points"; this returns the index map implementing that step.
    """
    rng = rng or np.random.default_rng(0)
    if num_points >= target:
        return np.sort(rng.choice(num_points, size=target, replace=False))
    extra = rng.choice(num_points, size=target - num_points, replace=True)
    return np.concatenate([np.arange(num_points), np.sort(extra)])


def simple_random_sampling_removal(num_points: int, num_removed: int,
                                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Indices *kept* after removing ``num_removed`` random points (SRS defense).

    The removal count is clamped to ``[0, num_points]``: asking for more
    removals than the cloud holds removes everything (an empty result), it
    does not raise and it does not silently keep an arbitrary survivor.
    """
    rng = rng or np.random.default_rng(0)
    num_removed = min(max(num_removed, 0), num_points)
    removed = set(rng.choice(num_points, size=num_removed, replace=False).tolist())
    return np.array([i for i in range(num_points) if i not in removed], dtype=np.int64)


def neighbourhood_change_ratio(original: np.ndarray, perturbed: np.ndarray,
                               k: int = 16) -> float:
    """Fraction of k-NN neighbourhood membership changed by a perturbation.

    Reproduces the paper's supporting measurement for Finding 1 ("over 88 % of
    the neighbourhood points are changed after coordinate-based perturbation").
    """
    from .knn import knn_indices

    original_idx = knn_indices(np.asarray(original), k)
    perturbed_idx = knn_indices(np.asarray(perturbed), k)
    changed = 0
    total = original_idx.shape[0] * original_idx.shape[1]
    for row in range(original_idx.shape[0]):
        before = set(original_idx[row].tolist())
        after = set(perturbed_idx[row].tolist())
        changed += len(before - after)
    return changed / total


__all__ = [
    "farthest_point_sampling",
    "random_sampling",
    "grid_subsampling",
    "duplicate_to_size",
    "simple_random_sampling_removal",
    "neighbourhood_change_ratio",
    "pairwise_squared_distances",
]
