"""``repro.geometry`` — point-cloud geometry utilities (kNN, sampling, normalisation).

The geometric substrate under the models and attacks: kd-tree-backed
neighbour queries (:func:`knn_indices`, :func:`dilated_knn_indices`,
:func:`ball_query` — trees are built once per cloud and shared across
every ``k`` and dilation by :mod:`repro.accel`'s neighbourhood cache),
sampling (:func:`farthest_point_sampling` drives PointNet++'s set
abstraction), and normalisation/augmentation transforms.  Everything is
pure NumPy/SciPy and deterministic given its inputs, so cached
aggregation graphs can be reused exactly whenever coordinates are
unchanged.
"""

from .knn import (
    ball_query,
    build_tree,
    dilated_knn_indices,
    knn_indices,
    knn_indices_batch,
    pairwise_squared_distances,
)
from .sampling import (
    duplicate_to_size,
    farthest_point_sampling,
    grid_subsampling,
    neighbourhood_change_ratio,
    random_sampling,
    simple_random_sampling_removal,
)
from .transforms import (
    MODEL_SPECS,
    POINTNET2_SPEC,
    RANDLANET_SPEC,
    RESGCN_SPEC,
    NormalizationSpec,
    denormalize_colors,
    normalize_colors,
    normalize_coords,
    normalize_to_range,
    remap_range,
)

__all__ = [
    "build_tree",
    "pairwise_squared_distances",
    "knn_indices",
    "knn_indices_batch",
    "dilated_knn_indices",
    "ball_query",
    "farthest_point_sampling",
    "random_sampling",
    "grid_subsampling",
    "duplicate_to_size",
    "simple_random_sampling_removal",
    "neighbourhood_change_ratio",
    "NormalizationSpec",
    "POINTNET2_SPEC",
    "RESGCN_SPEC",
    "RANDLANET_SPEC",
    "MODEL_SPECS",
    "normalize_to_range",
    "normalize_colors",
    "normalize_coords",
    "remap_range",
    "denormalize_colors",
]
