"""Batch preparation: turning scenes into normalised model inputs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.sampling import duplicate_to_size
from ..geometry.transforms import NormalizationSpec, normalize_colors, normalize_coords
from .base import PointCloudScene


@dataclass
class PreparedCloud:
    """A single scene converted to the value ranges a model expects.

    Attributes
    ----------
    coords:
        ``(N, 3)`` normalised coordinates.
    colors:
        ``(N, 3)`` normalised colours (typically in ``[0, 1]``).
    labels:
        ``(N,)`` integer labels.
    indices:
        ``(N,)`` indices into the original scene (identity unless the cloud
        was resized by duplication/selection, RandLA-Net style).
    scene:
        The originating scene.
    """

    coords: np.ndarray
    colors: np.ndarray
    labels: np.ndarray
    indices: np.ndarray
    scene: PointCloudScene

    @property
    def num_points(self) -> int:
        return self.coords.shape[0]


def prepare_scene(scene: PointCloudScene, spec: NormalizationSpec,
                  num_points: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None) -> PreparedCloud:
    """Normalise one scene for a given model's input conventions.

    Parameters
    ----------
    scene:
        The raw scene (metric coordinates, 0–255 colours).
    spec:
        The model's :class:`NormalizationSpec`.
    num_points:
        If given, the cloud is resized to exactly this many points by random
        duplication / selection (the RandLA-Net pre-processing step).
    """
    rng = rng or np.random.default_rng(0)
    if num_points is not None and num_points != scene.num_points:
        indices = duplicate_to_size(scene.num_points, num_points, rng)
    else:
        indices = np.arange(scene.num_points)
    coords = normalize_coords(scene.coords[indices], spec)
    colors = normalize_colors(scene.colors[indices], spec)
    labels = scene.labels[indices]
    return PreparedCloud(coords=coords, colors=colors, labels=labels,
                         indices=indices, scene=scene)


@dataclass
class Batch:
    """A stacked batch of prepared clouds."""

    coords: np.ndarray   # (B, N, 3)
    colors: np.ndarray   # (B, N, 3)
    labels: np.ndarray   # (B, N)
    clouds: List[PreparedCloud]

    @property
    def batch_size(self) -> int:
        return self.coords.shape[0]

    @property
    def num_points(self) -> int:
        return self.coords.shape[1]


def prepare_batch(scenes: Sequence[PointCloudScene], spec: NormalizationSpec,
                  num_points: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None) -> Batch:
    """Prepare and stack several scenes into a batch.

    All scenes are resized to a common size: ``num_points`` when given,
    otherwise the minimum scene size in the batch.
    """
    if not scenes:
        raise ValueError("prepare_batch requires at least one scene")
    rng = rng or np.random.default_rng(0)
    if num_points is None:
        num_points = min(scene.num_points for scene in scenes)
    clouds = [prepare_scene(scene, spec, num_points=num_points, rng=rng)
              for scene in scenes]
    return Batch(
        coords=np.stack([c.coords for c in clouds]),
        colors=np.stack([c.colors for c in clouds]),
        labels=np.stack([c.labels for c in clouds]),
        clouds=clouds,
    )


def iterate_batches(scenes: Sequence[PointCloudScene], spec: NormalizationSpec,
                    batch_size: int, num_points: Optional[int] = None,
                    rng: Optional[np.random.Generator] = None,
                    shuffle: bool = True):
    """Yield :class:`Batch` objects covering ``scenes`` in mini-batches."""
    rng = rng or np.random.default_rng(0)
    order = np.arange(len(scenes))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(scenes), batch_size):
        chunk = [scenes[i] for i in order[start:start + batch_size]]
        yield prepare_batch(chunk, spec, num_points=num_points, rng=rng)


__all__ = ["PreparedCloud", "Batch", "prepare_scene", "prepare_batch", "iterate_batches"]
