"""Synthetic Semantic3D-like outdoor dataset.

Semantic3D (Hackel et al.) contains billion-point outdoor laser scans with
8 classes.  This module generates outdoor street scenes with the same label
set and comparable class statistics (dominant terrain/building classes, small
car/artefact classes), at a configurable point budget.  Only RandLA-Net
consumes these scenes, mirroring the paper (PointNet++ and ResGCN cannot
handle the outdoor scale).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import PointCloudScene, SceneDataset
from . import scene_primitives as prim

SEMANTIC3D_CLASS_NAMES: Tuple[str, ...] = (
    "man-made terrain", "natural terrain", "high vegetation", "low vegetation",
    "buildings", "hard scape", "scanning artefacts", "cars",
)

SEMANTIC3D_NUM_CLASSES = len(SEMANTIC3D_CLASS_NAMES)

CLASS_INDEX: Dict[str, int] = {name: i for i, name in enumerate(SEMANTIC3D_CLASS_NAMES)}

# The paper uses 1-based Semantic3D labels (car=8, man-made terrain=1, ...);
# this maps our 0-based indices onto those.
PAPER_LABELS: Dict[str, int] = {name: i + 1 for i, name in enumerate(SEMANTIC3D_CLASS_NAMES)}

CLASS_COLORS: Dict[str, Tuple[float, float, float]] = {
    "man-made terrain": (92, 92, 98),
    "natural terrain": (122, 142, 72),
    "high vegetation": (42, 102, 46),
    "low vegetation": (96, 168, 88),
    "buildings": (182, 162, 140),
    "hard scape": (146, 146, 140),
    "scanning artefacts": (128, 128, 128),
    "cars": (168, 36, 36),
}

COLOR_NOISE_STD = 10.0

_LAYOUT: Dict[str, float] = {
    "man-made terrain": 0.22,
    "natural terrain": 0.18,
    "high vegetation": 0.15,
    "low vegetation": 0.08,
    "buildings": 0.20,
    "hard scape": 0.07,
    "scanning artefacts": 0.03,
    "cars": 0.07,
}


def _allocate_counts(total: int) -> Dict[str, int]:
    classes = list(_LAYOUT)
    raw = np.array([_LAYOUT[c] for c in classes])
    raw = raw / raw.sum()
    counts = np.floor(raw * total).astype(int)
    counts = np.maximum(counts, 8)
    counts[int(np.argmax(counts))] += total - counts.sum()
    return dict(zip(classes, counts.tolist()))


def _class_colors(name: str, count: int, rng: np.random.Generator) -> np.ndarray:
    base = np.asarray(CLASS_COLORS[name], dtype=np.float64)
    noise_std = COLOR_NOISE_STD * (5.0 if name == "scanning artefacts" else 1.0)
    return np.clip(base + rng.normal(0.0, noise_std, size=(count, 3)), 0.0, 255.0)


def _class_points(name: str, count: int, extent: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Sample coordinates for one outdoor class."""
    half = extent / 2.0
    if name == "man-made terrain":
        # A flat road strip crossing the scene.
        return prim.plane_points([0, half - 4.0, 0.02], [extent, 0, 0], [0, 8.0, 0],
                                 count, rng, jitter=0.02)
    if name == "natural terrain":
        return prim.heightfield_points((0, extent), (0, half - 4.0), count, rng,
                                       base_height=0.0, amplitude=0.5, frequency=0.35)
    if name == "low vegetation":
        bushes = []
        num = max(1, count // 60)
        per = count // num
        for i in range(num):
            center = [rng.uniform(2, extent - 2), rng.uniform(2, half - 5), 0.35]
            c = per if i < num - 1 else count - per * (num - 1)
            bushes.append(prim.sphere_points(center, 0.5, c, rng, solid=True))
        return np.concatenate(bushes)
    if name == "high vegetation":
        trees = []
        num = max(1, count // 150)
        per = count // num
        for i in range(num):
            position = [rng.uniform(3, extent - 3), rng.uniform(2, half - 5), 0.0]
            c = per if i < num - 1 else count - per * (num - 1)
            trees.append(prim.tree_points(position, c, rng))
        return np.concatenate(trees)
    if name == "buildings":
        buildings = []
        num = max(1, count // 300)
        per = count // num
        for i in range(num):
            center = [rng.uniform(5, extent - 5), rng.uniform(half + 6, extent - 5),
                      rng.uniform(4.0, 7.0)]
            size = [rng.uniform(8, 14), rng.uniform(6, 10), center[2] * 2]
            c = per if i < num - 1 else count - per * (num - 1)
            buildings.append(prim.box_points(center, size, c, rng))
        return np.concatenate(buildings)
    if name == "hard scape":
        pieces = []
        num = max(1, count // 80)
        per = count // num
        for i in range(num):
            center = [rng.uniform(2, extent - 2), half + rng.uniform(-3, 3), 0.5]
            c = per if i < num - 1 else count - per * (num - 1)
            pieces.append(prim.box_points(center, [2.0, 0.4, 1.0], c, rng))
        return np.concatenate(pieces)
    if name == "scanning artefacts":
        blobs = []
        num = max(1, count // 30)
        per = count // num
        for i in range(num):
            center = [rng.uniform(0, extent), rng.uniform(0, extent), rng.uniform(0.5, 5.0)]
            c = per if i < num - 1 else count - per * (num - 1)
            blobs.append(prim.blob_points(center, [0.4, 0.4, 0.8], c, rng))
        return np.concatenate(blobs)
    if name == "cars":
        cars = []
        num = max(1, count // 200)
        per = count // num
        for i in range(num):
            position = [rng.uniform(4, extent - 4), half + rng.uniform(-3.0, 3.0), 0.0]
            c = per if i < num - 1 else count - per * (num - 1)
            cars.append(prim.car_points(position, c, rng, heading=rng.uniform(0, np.pi)))
        return np.concatenate(cars)
    raise KeyError(f"unknown outdoor class {name!r}")


def generate_outdoor_scene(num_points: int = 2048,
                           rng: Optional[np.random.Generator] = None,
                           name: Optional[str] = None,
                           extent: float = 40.0) -> PointCloudScene:
    """Generate a single synthetic outdoor street scene.

    Parameters
    ----------
    num_points:
        Total number of points (exact).
    extent:
        Side length of the square scene footprint, in metres.
    """
    rng = rng or np.random.default_rng(0)
    counts = _allocate_counts(num_points)
    coords_parts: List[np.ndarray] = []
    colors_parts: List[np.ndarray] = []
    labels_parts: List[np.ndarray] = []
    for class_name, count in counts.items():
        coords = _class_points(class_name, count, extent, rng)[:count]
        if coords.shape[0] < count:
            extra = rng.integers(coords.shape[0], size=count - coords.shape[0])
            coords = np.concatenate([coords, coords[extra]])
        coords_parts.append(coords)
        colors_parts.append(_class_colors(class_name, count, rng))
        labels_parts.append(np.full(count, CLASS_INDEX[class_name], dtype=np.int64))
    coords = np.concatenate(coords_parts)
    colors = np.concatenate(colors_parts)
    labels = np.concatenate(labels_parts)
    order = rng.permutation(coords.shape[0])
    return PointCloudScene(
        coords=coords[order],
        colors=colors[order],
        labels=labels[order],
        class_names=SEMANTIC3D_CLASS_NAMES,
        name=name or f"outdoor_{rng.integers(1_000_000)}",
        metadata={"extent": extent},
    )


def generate_semantic3d_dataset(num_scenes: int = 8,
                                num_points: int = 2048,
                                seed: int = 0,
                                train_fraction: float = 0.75) -> SceneDataset:
    """Generate a synthetic Semantic3D-like dataset.

    Scenes carry a ``"split"`` metadata field ("train" or "test") so the
    training and attack pipelines can use disjoint scenes.
    """
    rng = np.random.default_rng(seed)
    scenes = []
    num_train = max(1, int(round(num_scenes * train_fraction)))
    for i in range(num_scenes):
        scene = generate_outdoor_scene(num_points=num_points, rng=rng,
                                       name=f"scene_{i + 1}")
        scene.metadata["split"] = "train" if i < num_train else "test"
        scenes.append(scene)
    return SceneDataset(scenes, SEMANTIC3D_CLASS_NAMES, name="synthetic-semantic3d")


def semantic3d_train_test_split(dataset: SceneDataset) -> Tuple[SceneDataset, SceneDataset]:
    """Split by the ``"split"`` metadata written by the generator."""
    train = dataset.filter(lambda s: s.metadata.get("split") == "train")
    test = dataset.filter(lambda s: s.metadata.get("split") != "train")
    return train, test


__all__ = [
    "SEMANTIC3D_CLASS_NAMES",
    "SEMANTIC3D_NUM_CLASSES",
    "CLASS_INDEX",
    "PAPER_LABELS",
    "CLASS_COLORS",
    "generate_outdoor_scene",
    "generate_semantic3d_dataset",
    "semantic3d_train_test_split",
]
