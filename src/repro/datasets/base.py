"""Core point-cloud containers shared by the synthetic datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class PointCloudScene:
    """A single labelled scene: coordinates, colours and per-point labels.

    Attributes
    ----------
    coords:
        ``(N, 3)`` float array of metric coordinates.
    colors:
        ``(N, 3)`` float array of RGB values in ``[0, 255]``.
    labels:
        ``(N,)`` integer array of semantic class indices.
    class_names:
        Names for each class index.
    name:
        Human-readable scene identifier (e.g. ``"Area_5/office_33"``).
    metadata:
        Free-form extra information (room size, generator seed, ...).
    """

    coords: np.ndarray
    colors: np.ndarray
    labels: np.ndarray
    class_names: Sequence[str]
    name: str = "scene"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        self.colors = np.asarray(self.colors, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise ValueError("coords must have shape (N, 3)")
        if self.colors.shape != self.coords.shape:
            raise ValueError("colors must have shape (N, 3)")
        if self.labels.shape != (self.coords.shape[0],):
            raise ValueError("labels must have shape (N,)")
        if self.labels.size and (self.labels.min() < 0
                                 or self.labels.max() >= len(self.class_names)):
            raise ValueError("labels must index into class_names")

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return self.coords.shape[0]

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> np.ndarray:
        """Number of points per class."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def points_of_class(self, class_index: int) -> np.ndarray:
        """Indices of all points with the given label."""
        return np.flatnonzero(self.labels == class_index)

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "PointCloudScene":
        """Return a new scene containing only the selected points."""
        indices = np.asarray(indices, dtype=np.int64)
        return PointCloudScene(
            coords=self.coords[indices],
            colors=self.colors[indices],
            labels=self.labels[indices],
            class_names=self.class_names,
            name=name or self.name,
            metadata=dict(self.metadata),
        )

    def copy(self) -> "PointCloudScene":
        return PointCloudScene(
            coords=self.coords.copy(),
            colors=self.colors.copy(),
            labels=self.labels.copy(),
            class_names=list(self.class_names),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_fields(self, coords: Optional[np.ndarray] = None,
                    colors: Optional[np.ndarray] = None) -> "PointCloudScene":
        """Return a copy with coordinates and/or colours replaced."""
        return PointCloudScene(
            coords=self.coords.copy() if coords is None else np.asarray(coords),
            colors=self.colors.copy() if colors is None else np.asarray(colors),
            labels=self.labels.copy(),
            class_names=list(self.class_names),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def features(self) -> np.ndarray:
        """The 9-feature representation used by S3DIS-style pipelines.

        Columns: raw xyz, rgb in [0, 1], and xyz normalised to the unit cube
        of the scene (the "normalized location" channels of S3DIS).
        """
        span = self.coords.max(axis=0) - self.coords.min(axis=0)
        span = np.where(span > 0, span, 1.0)
        normalized = (self.coords - self.coords.min(axis=0)) / span
        return np.concatenate([self.coords, self.colors / 255.0, normalized], axis=1)


class SceneDataset:
    """An in-memory list of scenes with train/test split helpers."""

    def __init__(self, scenes: List[PointCloudScene], class_names: Sequence[str],
                 name: str = "dataset") -> None:
        self.scenes = list(scenes)
        self.class_names = list(class_names)
        self.name = name
        for scene in self.scenes:
            if list(scene.class_names) != self.class_names:
                raise ValueError("all scenes must share the dataset's class names")

    def __len__(self) -> int:
        return len(self.scenes)

    def __getitem__(self, index: int) -> PointCloudScene:
        return self.scenes[index]

    def __iter__(self):
        return iter(self.scenes)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def filter(self, predicate) -> "SceneDataset":
        """Return a new dataset with only the scenes matching ``predicate``."""
        return SceneDataset([s for s in self.scenes if predicate(s)],
                            self.class_names, name=self.name)

    def class_counts(self) -> np.ndarray:
        counts = np.zeros(self.num_classes, dtype=np.int64)
        for scene in self.scenes:
            counts += scene.class_counts()
        return counts


__all__ = ["PointCloudScene", "SceneDataset"]
