"""Synthetic S3DIS-like indoor dataset.

The real S3DIS dataset (Armeni et al.) is a multi-GB collection of Matterport
scans and is not available offline, so this module procedurally generates
indoor room scenes with the *same label set*, the same coordinate+colour point
layout, and class-characteristic geometry and colour statistics.  The
generated rooms are easy enough that the small NumPy models reach high clean
accuracy, giving the attacks the same starting point as the paper
(80–90 % clean accuracy on Area 5).

Class indices follow the standard S3DIS ordering, which is what the paper's
object-hiding experiments reference (wall=2, window=5, door=6, table=7,
chair=8, bookcase=10, board=11).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import PointCloudScene, SceneDataset
from . import scene_primitives as prim

S3DIS_CLASS_NAMES: Tuple[str, ...] = (
    "ceiling", "floor", "wall", "beam", "column", "window", "door",
    "table", "chair", "sofa", "bookcase", "board", "clutter",
)

S3DIS_NUM_CLASSES = len(S3DIS_CLASS_NAMES)

CLASS_INDEX: Dict[str, int] = {name: i for i, name in enumerate(S3DIS_CLASS_NAMES)}

# Mean RGB colour (0-255) per class; per-point Gaussian noise is added on top.
CLASS_COLORS: Dict[str, Tuple[float, float, float]] = {
    "ceiling": (235, 235, 230),
    "floor": (150, 118, 88),
    "wall": (202, 196, 186),
    "beam": (120, 122, 128),
    "column": (162, 162, 168),
    "window": (100, 150, 212),
    "door": (122, 80, 48),
    "table": (176, 132, 84),
    "chair": (184, 58, 58),
    "sofa": (58, 132, 82),
    "bookcase": (110, 68, 122),
    "board": (226, 238, 228),
    "clutter": (128, 128, 128),
}

COLOR_NOISE_STD = 10.0

ROOM_TYPES = ("office", "conference", "hallway", "lobby")

# Fraction of the point budget assigned to each class, per room type.
_ROOM_LAYOUTS: Dict[str, Dict[str, float]] = {
    "office": {
        "ceiling": 0.13, "floor": 0.13, "wall": 0.24, "window": 0.06,
        "door": 0.06, "table": 0.09, "chair": 0.08, "bookcase": 0.08,
        "board": 0.06, "clutter": 0.07,
    },
    "conference": {
        "ceiling": 0.13, "floor": 0.13, "wall": 0.24, "window": 0.07,
        "door": 0.05, "table": 0.14, "chair": 0.12, "board": 0.07,
        "clutter": 0.05,
    },
    "hallway": {
        "ceiling": 0.17, "floor": 0.18, "wall": 0.34, "beam": 0.07,
        "column": 0.07, "door": 0.09, "clutter": 0.08,
    },
    "lobby": {
        "ceiling": 0.14, "floor": 0.15, "wall": 0.24, "window": 0.07,
        "door": 0.06, "column": 0.07, "sofa": 0.13, "table": 0.07,
        "clutter": 0.07,
    },
}


def _allocate_counts(layout: Dict[str, float], total: int) -> Dict[str, int]:
    """Turn per-class fractions into integer point counts summing to ``total``."""
    classes = list(layout)
    raw = np.array([layout[c] for c in classes], dtype=np.float64)
    raw = raw / raw.sum()
    counts = np.floor(raw * total).astype(int)
    counts = np.maximum(counts, 8)
    # Adjust the largest class so the total matches exactly.
    diff = total - counts.sum()
    counts[int(np.argmax(counts))] += diff
    if counts.min() <= 0:
        raise ValueError("point budget too small for the requested room layout")
    return dict(zip(classes, counts.tolist()))


def _class_colors(name: str, count: int, rng: np.random.Generator) -> np.ndarray:
    base = np.asarray(CLASS_COLORS[name], dtype=np.float64)
    noise_std = COLOR_NOISE_STD * (3.0 if name == "clutter" else 1.0)
    colors = base + rng.normal(0.0, noise_std, size=(count, 3))
    return np.clip(colors, 0.0, 255.0)


def _structure_points(name: str, count: int, room: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
    """Sample coordinates for the architectural classes of an indoor room."""
    length, width, height = room
    if name == "ceiling":
        return prim.plane_points([0, 0, height], [length, 0, 0], [0, width, 0],
                                 count, rng, jitter=0.01)
    if name == "floor":
        return prim.plane_points([0, 0, 0], [length, 0, 0], [0, width, 0],
                                 count, rng, jitter=0.01)
    if name == "wall":
        per_wall = count // 4
        walls = [
            prim.plane_points([0, 0, 0], [length, 0, 0], [0, 0, height],
                              per_wall, rng, jitter=0.01),
            prim.plane_points([0, width, 0], [length, 0, 0], [0, 0, height],
                              per_wall, rng, jitter=0.01),
            prim.plane_points([0, 0, 0], [0, width, 0], [0, 0, height],
                              per_wall, rng, jitter=0.01),
            prim.plane_points([length, 0, 0], [0, width, 0], [0, 0, height],
                              count - 3 * per_wall, rng, jitter=0.01),
        ]
        return np.concatenate(walls)
    if name == "beam":
        return prim.box_points([length / 2, width / 2, height - 0.15],
                               [length * 0.9, 0.25, 0.25], count, rng)
    if name == "column":
        return prim.cylinder_points([length * 0.25, width * 0.25, 0.0],
                                    0.18, height, count, rng)
    if name == "window":
        return prim.plane_points([length * 0.25, width - 0.02, 0.9],
                                 [length * 0.4, 0, 0], [0, 0, 1.2],
                                 count, rng, jitter=0.015)
    if name == "door":
        return prim.plane_points([0.02, width * 0.3, 0.0],
                                 [0, width * 0.25, 0], [0, 0, 2.1],
                                 count, rng, jitter=0.015)
    if name == "board":
        return prim.plane_points([length * 0.55, 0.04, 1.0],
                                 [length * 0.35, 0, 0], [0, 0, 1.1],
                                 count, rng, jitter=0.01)
    raise KeyError(f"not a structural class: {name}")


def _furniture_points(name: str, count: int, room: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
    """Sample coordinates for the furniture / clutter classes."""
    length, width, _ = room
    if name == "table":
        center = [length * rng.uniform(0.35, 0.65), width * rng.uniform(0.35, 0.65), 0.0]
        return prim.table_points(center, count, rng)
    if name == "chair":
        chairs = []
        num_chairs = max(1, count // 120)
        per_chair = count // num_chairs
        for i in range(num_chairs):
            position = [length * rng.uniform(0.2, 0.8), width * rng.uniform(0.2, 0.8), 0.0]
            chair_count = per_chair if i < num_chairs - 1 else count - per_chair * (num_chairs - 1)
            chairs.append(prim.chair_points(position, chair_count, rng))
        return np.concatenate(chairs)
    if name == "sofa":
        center = [length * rng.uniform(0.3, 0.7), width * 0.2, 0.35]
        return prim.box_points(center, [1.8, 0.8, 0.7], count, rng)
    if name == "bookcase":
        center = [length - 0.25, width * rng.uniform(0.3, 0.7), 1.0]
        return prim.box_points(center, [0.4, 1.4, 2.0], count, rng)
    if name == "clutter":
        blobs = []
        num_blobs = max(1, count // 40)
        per_blob = count // num_blobs
        for i in range(num_blobs):
            center = [length * rng.uniform(0.1, 0.9), width * rng.uniform(0.1, 0.9),
                      rng.uniform(0.0, 1.2)]
            blob_count = per_blob if i < num_blobs - 1 else count - per_blob * (num_blobs - 1)
            blobs.append(prim.blob_points(center, [0.12, 0.12, 0.12], blob_count, rng))
        return np.concatenate(blobs)
    raise KeyError(f"not a furniture class: {name}")


_STRUCTURAL = {"ceiling", "floor", "wall", "beam", "column", "window", "door", "board"}


def generate_room_scene(num_points: int = 1024,
                        room_type: str = "office",
                        rng: Optional[np.random.Generator] = None,
                        name: Optional[str] = None,
                        room_size: Optional[Sequence[float]] = None) -> PointCloudScene:
    """Generate a single synthetic indoor room scene.

    Parameters
    ----------
    num_points:
        Total number of points in the scene (exact).
    room_type:
        One of ``"office"``, ``"conference"``, ``"hallway"``, ``"lobby"``.
    rng:
        Source of randomness; a fresh default generator is used if omitted.
    name:
        Scene name; defaults to ``"{room_type}_<seeded>"``.
    room_size:
        Optional ``(length, width, height)`` override in metres.
    """
    if room_type not in _ROOM_LAYOUTS:
        raise ValueError(f"unknown room type {room_type!r}; choose from {ROOM_TYPES}")
    rng = rng or np.random.default_rng(0)
    if room_size is None:
        room = np.array([
            rng.uniform(3.5, 6.0),
            rng.uniform(3.0, 5.0),
            rng.uniform(2.6, 3.2),
        ])
    else:
        room = np.asarray(room_size, dtype=np.float64)
    layout = _ROOM_LAYOUTS[room_type]
    counts = _allocate_counts(layout, num_points)

    coords_parts: List[np.ndarray] = []
    colors_parts: List[np.ndarray] = []
    labels_parts: List[np.ndarray] = []
    for class_name, count in counts.items():
        if class_name in _STRUCTURAL:
            coords = _structure_points(class_name, count, room, rng)
        else:
            coords = _furniture_points(class_name, count, room, rng)
        coords = coords[:count]
        if coords.shape[0] < count:
            extra = rng.integers(coords.shape[0], size=count - coords.shape[0])
            coords = np.concatenate([coords, coords[extra]])
        coords_parts.append(coords)
        colors_parts.append(_class_colors(class_name, count, rng))
        labels_parts.append(np.full(count, CLASS_INDEX[class_name], dtype=np.int64))

    coords = np.concatenate(coords_parts)
    colors = np.concatenate(colors_parts)
    labels = np.concatenate(labels_parts)
    order = rng.permutation(coords.shape[0])
    return PointCloudScene(
        coords=coords[order],
        colors=colors[order],
        labels=labels[order],
        class_names=S3DIS_CLASS_NAMES,
        name=name or f"{room_type}_{rng.integers(1_000_000)}",
        metadata={"room_type": room_type, "room_size": room.tolist()},
    )


def generate_s3dis_dataset(scenes_per_area: int = 4,
                           num_points: int = 1024,
                           seed: int = 0,
                           areas: Sequence[int] = (1, 2, 3, 4, 5, 6)) -> SceneDataset:
    """Generate a full synthetic S3DIS-like dataset split into areas.

    The paper trains on Areas 1–4 and 6 and evaluates/attacks on Area 5; the
    ``area`` metadata field supports the same split via
    :func:`s3dis_train_test_split`.
    """
    rng = np.random.default_rng(seed)
    scenes: List[PointCloudScene] = []
    for area in areas:
        for i in range(scenes_per_area):
            room_type = ROOM_TYPES[i % len(ROOM_TYPES)]
            scene = generate_room_scene(
                num_points=num_points,
                room_type=room_type,
                rng=rng,
                name=f"Area_{area}/{room_type}_{i + 1}",
            )
            scene.metadata["area"] = area
            scenes.append(scene)
    return SceneDataset(scenes, S3DIS_CLASS_NAMES, name="synthetic-s3dis")


def s3dis_train_test_split(dataset: SceneDataset,
                           test_area: int = 5) -> Tuple[SceneDataset, SceneDataset]:
    """Split a synthetic S3DIS dataset into train and test by area."""
    train = dataset.filter(lambda s: s.metadata.get("area") != test_area)
    test = dataset.filter(lambda s: s.metadata.get("area") == test_area)
    return train, test


__all__ = [
    "S3DIS_CLASS_NAMES",
    "S3DIS_NUM_CLASSES",
    "CLASS_INDEX",
    "CLASS_COLORS",
    "ROOM_TYPES",
    "generate_room_scene",
    "generate_s3dis_dataset",
    "s3dis_train_test_split",
]
