"""``repro.datasets`` — synthetic S3DIS-like and Semantic3D-like datasets.

The reproduction runs without downloads: scene generators build indoor
rooms with S3DIS's 13 classes (:func:`generate_room_scene`,
:func:`generate_s3dis_dataset` with the standard area-based
:func:`s3dis_train_test_split`) and outdoor Semantic3D-like scenes with
8 classes (:func:`generate_outdoor_scene`,
:func:`generate_semantic3d_dataset`).  Generation is deterministic in
the seed — worker processes and re-runs regenerate byte-identical
scenes, which is what lets the pipeline treat datasets as cacheable
tasks and the serve workers rebuild them on demand.  Scenes are plain
``PointCloudScene`` records (coordinates, colours, labels, name)
grouped into ``SceneDataset`` splits.
"""

from .base import PointCloudScene, SceneDataset
from .s3dis import (
    CLASS_COLORS as S3DIS_CLASS_COLORS,
    CLASS_INDEX as S3DIS_CLASS_INDEX,
    ROOM_TYPES,
    S3DIS_CLASS_NAMES,
    S3DIS_NUM_CLASSES,
    generate_room_scene,
    generate_s3dis_dataset,
    s3dis_train_test_split,
)
from .semantic3d import (
    CLASS_COLORS as SEMANTIC3D_CLASS_COLORS,
    CLASS_INDEX as SEMANTIC3D_CLASS_INDEX,
    PAPER_LABELS as SEMANTIC3D_PAPER_LABELS,
    SEMANTIC3D_CLASS_NAMES,
    SEMANTIC3D_NUM_CLASSES,
    generate_outdoor_scene,
    generate_semantic3d_dataset,
    semantic3d_train_test_split,
)
from .splits import Batch, PreparedCloud, iterate_batches, prepare_batch, prepare_scene

__all__ = [
    "PointCloudScene",
    "SceneDataset",
    "S3DIS_CLASS_NAMES",
    "S3DIS_NUM_CLASSES",
    "S3DIS_CLASS_INDEX",
    "S3DIS_CLASS_COLORS",
    "ROOM_TYPES",
    "generate_room_scene",
    "generate_s3dis_dataset",
    "s3dis_train_test_split",
    "SEMANTIC3D_CLASS_NAMES",
    "SEMANTIC3D_NUM_CLASSES",
    "SEMANTIC3D_CLASS_INDEX",
    "SEMANTIC3D_CLASS_COLORS",
    "SEMANTIC3D_PAPER_LABELS",
    "generate_outdoor_scene",
    "generate_semantic3d_dataset",
    "semantic3d_train_test_split",
    "PreparedCloud",
    "Batch",
    "prepare_scene",
    "prepare_batch",
    "iterate_batches",
]
