"""Geometric primitives for procedural scene generation.

Each function samples points on or near a simple surface and returns an
``(N, 3)`` coordinate array.  The indoor (S3DIS-like) and outdoor
(Semantic3D-like) generators compose these primitives into labelled scenes.
"""

from __future__ import annotations

import numpy as np


def plane_points(origin, edge_u, edge_v, count: int,
                 rng: np.random.Generator, jitter: float = 0.0) -> np.ndarray:
    """Sample points uniformly on a parallelogram patch.

    Parameters
    ----------
    origin:
        A corner of the patch.
    edge_u, edge_v:
        The two edge vectors spanning the patch.
    count:
        Number of points to sample.
    jitter:
        Standard deviation of Gaussian noise added along the patch normal.
    """
    origin = np.asarray(origin, dtype=np.float64)
    edge_u = np.asarray(edge_u, dtype=np.float64)
    edge_v = np.asarray(edge_v, dtype=np.float64)
    u = rng.random(count)[:, None]
    v = rng.random(count)[:, None]
    points = origin + u * edge_u + v * edge_v
    if jitter > 0:
        normal = np.cross(edge_u, edge_v)
        norm = np.linalg.norm(normal)
        if norm > 0:
            normal = normal / norm
            points = points + rng.normal(0.0, jitter, size=(count, 1)) * normal
    return points


def box_points(center, size, count: int, rng: np.random.Generator,
               top_only: bool = False) -> np.ndarray:
    """Sample points on the surface of an axis-aligned box.

    Faces are sampled proportionally to their area.  ``top_only`` restricts
    sampling to the top face plus the four side faces (useful for tables).
    """
    center = np.asarray(center, dtype=np.float64)
    size = np.asarray(size, dtype=np.float64)
    half = size / 2.0
    sx, sy, sz = size
    faces = [
        # (normal axis, sign, area)
        (2, +1, sx * sy),           # top
        (0, +1, sy * sz), (0, -1, sy * sz),
        (1, +1, sx * sz), (1, -1, sx * sz),
    ]
    if not top_only:
        faces.append((2, -1, sx * sy))  # bottom
    areas = np.array([f[2] for f in faces])
    probs = areas / areas.sum()
    face_choice = rng.choice(len(faces), size=count, p=probs)
    points = np.empty((count, 3))
    for i, face_idx in enumerate(face_choice):
        axis, sign, _ = faces[face_idx]
        p = (rng.random(3) - 0.5) * size
        p[axis] = sign * half[axis]
        points[i] = center + p
    return points


def cylinder_points(base_center, radius: float, height: float, count: int,
                    rng: np.random.Generator, include_caps: bool = False) -> np.ndarray:
    """Sample points on the lateral surface of a vertical cylinder."""
    base_center = np.asarray(base_center, dtype=np.float64)
    angles = rng.random(count) * 2 * np.pi
    heights = rng.random(count) * height
    points = np.stack([
        base_center[0] + radius * np.cos(angles),
        base_center[1] + radius * np.sin(angles),
        base_center[2] + heights,
    ], axis=1)
    if include_caps and count >= 10:
        cap_count = count // 10
        r = radius * np.sqrt(rng.random(cap_count))
        theta = rng.random(cap_count) * 2 * np.pi
        caps = np.stack([
            base_center[0] + r * np.cos(theta),
            base_center[1] + r * np.sin(theta),
            np.full(cap_count, base_center[2] + height),
        ], axis=1)
        points[:cap_count] = caps
    return points


def sphere_points(center, radius: float, count: int,
                  rng: np.random.Generator, solid: bool = False) -> np.ndarray:
    """Sample points on (or inside, when ``solid``) a sphere."""
    center = np.asarray(center, dtype=np.float64)
    direction = rng.normal(size=(count, 3))
    direction /= np.maximum(np.linalg.norm(direction, axis=1, keepdims=True), 1e-12)
    if solid:
        r = radius * rng.random(count) ** (1.0 / 3.0)
    else:
        r = np.full(count, radius)
    return center + direction * r[:, None]


def blob_points(center, scale, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a Gaussian blob (used for clutter / scanning artefacts)."""
    center = np.asarray(center, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    return center + rng.normal(size=(count, 3)) * scale


def heightfield_points(x_range, y_range, count: int, rng: np.random.Generator,
                       base_height: float = 0.0, amplitude: float = 0.0,
                       frequency: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Sample a smooth terrain height-field ``z = h(x, y)``.

    The height is a small sum of sinusoids, which makes "natural terrain"
    visibly bumpier than the flat "man-made terrain".
    """
    x = rng.uniform(x_range[0], x_range[1], size=count)
    y = rng.uniform(y_range[0], y_range[1], size=count)
    z = (base_height
         + amplitude * np.sin(frequency * x + phase)
         * np.cos(0.7 * frequency * y + phase))
    return np.stack([x, y, z], axis=1)


def chair_points(position, count: int, rng: np.random.Generator,
                 seat_height: float = 0.45, size: float = 0.45) -> np.ndarray:
    """A simple chair: seat box, back-rest box and four thin legs."""
    position = np.asarray(position, dtype=np.float64)
    seat_count = count // 3
    back_count = count // 3
    leg_count = count - seat_count - back_count
    seat = box_points(position + [0, 0, seat_height], [size, size, 0.06],
                      seat_count, rng)
    back = box_points(position + [0, -size / 2 + 0.03, seat_height + size / 2],
                      [size, 0.06, size], back_count, rng)
    legs = []
    per_leg = max(leg_count // 4, 1)
    for dx in (-1, 1):
        for dy in (-1, 1):
            base = position + [dx * size / 2.5, dy * size / 2.5, 0.0]
            legs.append(cylinder_points(base, 0.025, seat_height, per_leg, rng))
    legs = np.concatenate(legs)[:leg_count]
    if legs.shape[0] < leg_count:
        legs = np.concatenate([legs, seat[: leg_count - legs.shape[0]]])
    return np.concatenate([seat, back, legs])


def table_points(position, count: int, rng: np.random.Generator,
                 height: float = 0.75, size=(1.4, 0.8)) -> np.ndarray:
    """A table: a flat top plus four legs."""
    position = np.asarray(position, dtype=np.float64)
    top_count = int(count * 0.7)
    leg_count = count - top_count
    top = box_points(position + [0, 0, height], [size[0], size[1], 0.05],
                     top_count, rng, top_only=True)
    legs = []
    per_leg = max(leg_count // 4, 1)
    for dx in (-1, 1):
        for dy in (-1, 1):
            base = position + [dx * size[0] / 2.2, dy * size[1] / 2.2, 0.0]
            legs.append(cylinder_points(base, 0.03, height, per_leg, rng))
    legs = np.concatenate(legs)[:leg_count]
    if legs.shape[0] < leg_count:
        legs = np.concatenate([legs, top[: leg_count - legs.shape[0]]])
    return np.concatenate([top, legs])


def car_points(position, count: int, rng: np.random.Generator,
               heading: float = 0.0) -> np.ndarray:
    """A car: a body box plus a smaller cabin box, rotated by ``heading``."""
    position = np.asarray(position, dtype=np.float64)
    body_count = int(count * 0.65)
    cabin_count = count - body_count
    body = box_points([0, 0, 0.7], [4.2, 1.8, 1.4], body_count, rng)
    cabin = box_points([0.1, 0, 1.6], [2.2, 1.6, 0.6], cabin_count, rng)
    points = np.concatenate([body, cabin])
    cos_h, sin_h = np.cos(heading), np.sin(heading)
    rotation = np.array([[cos_h, -sin_h, 0.0], [sin_h, cos_h, 0.0], [0.0, 0.0, 1.0]])
    return points @ rotation.T + position


def tree_points(position, count: int, rng: np.random.Generator,
                trunk_height: float = 3.0, canopy_radius: float = 1.8) -> np.ndarray:
    """A tree: a trunk cylinder plus a spherical canopy."""
    position = np.asarray(position, dtype=np.float64)
    trunk_count = count // 5
    canopy_count = count - trunk_count
    trunk = cylinder_points(position, 0.2, trunk_height, trunk_count, rng)
    canopy = sphere_points(position + [0, 0, trunk_height + canopy_radius * 0.6],
                           canopy_radius, canopy_count, rng, solid=True)
    return np.concatenate([trunk, canopy])


__all__ = [
    "plane_points",
    "box_points",
    "cylinder_points",
    "sphere_points",
    "blob_points",
    "heightfield_points",
    "chair_points",
    "table_points",
    "car_points",
    "tree_points",
]
