"""Black-box extension table: query budget vs attack success.

Not a table from the paper — an extension opened by :mod:`repro.core.
blackbox`.  For each black-box mode (NES, SPSA, decision-based boundary
walk) the colour field of the held-out indoor pool is attacked under a
ladder of query budgets, and the resulting accuracy / aIoU / perturbation
size is reported per (mode × budget) cell.  The plan decomposes exactly
like Tables II–IX: one ``attack_cell`` task per cell, all riding the shared
dataset → model prerequisites, so ``python -m repro.pipeline --experiment
table_blackbox --jobs N`` fans the cells out and the content-addressed
store resumes them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

MODEL = "pointnet2"
MODES = ("nes", "spsa", "boundary")

#: The shared black-box operating point.  Estimated gradients need more room
#: than exact ones, so the ε-ball is wider than the white-box tables', and
#: the success criterion is the *attacker's own*: accuracy on the attacked
#: points at or below 55 % (a black-box colour attack cannot reach the
#: random-guess level the white-box ``Converge(·)`` default demands —
#: coordinates alone carry too much signal).
OPERATING_POINT = {
    "epsilon": 0.4,
    "step_size": 0.05,
    "fd_sigma": 0.1,
    "target_accuracy": 0.55,
}


def query_budgets(config: ExperimentConfig) -> Tuple[int, ...]:
    """The budget ladder: quarter / half / full of the top budget.

    The top of the ladder is ``config.query_budget`` when set (so
    ``--query-budget`` rescales the whole table), else the profile default.
    """
    top = config.query_budget
    if top is None:
        top = 5000 if config.attack_profile == "paper" else 480
    top = max(int(top), 4)
    return (top // 4, top // 2, top)


def _cell_id(mode: str, budget: int) -> str:
    return f"table_blackbox/{mode}/q{budget}"


def plan_table_blackbox(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → model → (mode × budget) attack cells → assembly."""
    graph = TaskGraph(result="table_blackbox:result")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    model_id = add_model_task(graph, MODEL, "s3dis")
    cell_ids: List[str] = []
    for mode in MODES:
        for budget in query_budgets(config):
            graph.add(Task(_cell_id(mode, budget), "attack_cell", {
                "model": MODEL, "dataset": "s3dis", "pool": pool,
                "mode": "batch",
                "attack": {"objective": "degradation", "method": "bounded",
                           "field": "color", "attack_mode": mode,
                           "query_budget": budget, **OPERATING_POINT},
            }, deps=(model_id,)))
            cell_ids.append(_cell_id(mode, budget))
    graph.add(Task("table_blackbox:result", "table_blackbox:assemble", {},
                   deps=tuple(cell_ids), cacheable=False))
    return graph


def _mean(records: List[Mapping[str, Any]], extract) -> float:
    return float(np.mean([extract(record) for record in records]))


@register_executor("table_blackbox:assemble")
def _assemble_table_blackbox(context: ExperimentContext,
                             params: Mapping[str, Any],
                             deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    num_scenes = 0
    for mode in MODES:
        for budget in query_budgets(context.config):
            payload = deps[_cell_id(mode, budget)]
            records = payload["records"]
            num_scenes = payload["num_scenes"]
            rows.append({
                "mode": mode,
                "query_budget": budget,
                "queries_used": _mean(records,
                                      lambda r: r.get("queries")
                                      or r["iterations"]),
                "l2": _mean(records, lambda r: r["l2"]),
                "accuracy_pct": _mean(
                    records, lambda r: r["outcome"].accuracy) * 100.0,
                "aiou_pct": _mean(records,
                                  lambda r: r["outcome"].aiou) * 100.0,
                "accuracy_drop_pct": _mean(
                    records, lambda r: r["outcome"].accuracy_drop) * 100.0,
                "success_pct": _mean(
                    records, lambda r: float(r["converged"])) * 100.0,
            })
    return TableResult(
        name="table_blackbox",
        title=("Black-box extension: query budget vs attack success "
               f"({MODEL}, colour field, performance degradation)"),
        rows=rows,
        columns=["mode", "query_budget", "queries_used", "l2",
                 "accuracy_pct", "aiou_pct", "accuracy_drop_pct",
                 "success_pct"],
        metadata={"num_scenes": num_scenes, "model": MODEL},
    )


def run_table_blackbox(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate the black-box query-budget table on the synthetic data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table_blackbox(context.config), context)


__all__ = ["run_table_blackbox", "plan_table_blackbox", "MODES",
           "query_budgets"]
