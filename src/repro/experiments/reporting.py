"""Table formatting: turn experiment rows into paper-style text tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TableResult:
    """The output of one experiment runner.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"table3"``).
    title:
        Human-readable description matching the paper's caption.
    rows:
        One dictionary per table row; keys are column names.
    columns:
        Column display order (defaults to the keys of the first row).
    metadata:
        Extra context (model accuracies, configuration used, ...).
    """

    name: str
    title: str
    rows: List[Dict[str, object]]
    columns: Optional[Sequence[str]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def column_names(self) -> List[str]:
        if self.columns is not None:
            return list(self.columns)
        if not self.rows:
            return []
        return list(self.rows[0].keys())

    def formatted(self) -> str:
        """Fixed-width text rendering of the table."""
        return format_table(self.column_names(), self.rows, title=self.title)

    def markdown(self) -> str:
        """GitHub-flavoured markdown rendering of the table."""
        columns = self.column_names()
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_format_value(row.get(c)) for c in columns) + " |")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Dict[str, object]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned fixed-width text table."""
    columns = list(columns)
    rendered = [[_format_value(row.get(column)) for column in columns] for row in rows]
    widths = [max(len(column), *(len(r[i]) for r in rendered)) if rendered else len(column)
              for i, column in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


__all__ = ["TableResult", "format_table"]
