"""Table III — performance degradation across the three PCSS models.

For every model (PointNet++, ResGCN, RandLA-Net) and every method (random
noise baseline, norm-unbounded, norm-bounded) the colour field is attacked
and the L2 distance, accuracy and aIoU are reported for the best / average /
worst cloud.  The random-noise baseline is matched to the L2 budget actually
used by the norm-unbounded attack, exactly as in the paper.

The experiment is expressed as a pipeline plan: one attack cell per
(model × method), with each noise cell depending on its model's unbounded
cell for the L2 budget, and a final assembly task.  ``run_table3`` executes
the plan serially (or through the context's pipeline session when present).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..metrics.summary import summarize_outcomes
from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

MODELS = ("pointnet2", "resgcn", "randlanet")
_ROW_METHODS = ("noise", "unbounded", "bounded")


def _cell_id(model_name: str, method: str) -> str:
    return f"table3/{model_name}/{method}"


def plan_table3(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → models → 9 attack cells → table assembly."""
    graph = TaskGraph(result="table3:result")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    cell_ids: List[str] = []
    for model_name in MODELS:
        model_id = add_model_task(graph, model_name, "s3dis")
        for method in ("unbounded", "bounded"):
            graph.add(Task(_cell_id(model_name, method), "attack_cell", {
                "model": model_name, "dataset": "s3dis", "pool": pool,
                "attack": {"objective": "degradation", "method": method,
                           "field": "color"},
            }, deps=(model_id,)))
            cell_ids.append(_cell_id(model_name, method))
        graph.add(Task(_cell_id(model_name, "noise"), "attack_cell", {
            "model": model_name, "dataset": "s3dis", "pool": pool,
            "attack": {"objective": "degradation", "method": "noise",
                       "field": "color"},
            "match_l2_from": _cell_id(model_name, "unbounded"),
        }, deps=(model_id, _cell_id(model_name, "unbounded"))))
        cell_ids.append(_cell_id(model_name, "noise"))
    graph.add(Task("table3:result", "table3:assemble", {},
                   deps=tuple(cell_ids), cacheable=False))
    return graph


def _summarize(records: List[Mapping[str, Any]]) -> Dict[str, object]:
    summary = summarize_outcomes([r["outcome"] for r in records])
    by_accuracy = sorted(records, key=lambda r: r["outcome"].accuracy)
    return {
        "summary": summary,
        "l2": {
            "best": by_accuracy[0]["l2"],
            "avg": float(np.mean([r["l2"] for r in records])),
            "worst": by_accuracy[-1]["l2"],
        },
    }


@register_executor("table3:assemble")
def _assemble_table3(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, object]] = {}
    num_scenes = 0
    for model_name in MODELS:
        for method in _ROW_METHODS:
            payload = deps[_cell_id(model_name, method)]
            num_scenes = payload["num_scenes"]
            cell = _summarize(payload["records"])
            cells[f"{model_name}/{method}"] = cell
            summary = cell["summary"]
            for case in ("best", "avg", "worst"):
                case_summary = {"best": summary.best, "avg": summary.average,
                                "worst": summary.worst}[case]
                rows.append({
                    "model": model_name,
                    "method": method,
                    "case": case,
                    "l2": cell["l2"][case],
                    "accuracy_pct": case_summary.accuracy * 100.0,
                    "aiou_pct": case_summary.aiou * 100.0,
                    "clean_accuracy_pct": summary.clean_accuracy * 100.0,
                    "accuracy_drop_pct": (summary.clean_accuracy
                                          - case_summary.accuracy) * 100.0,
                })

    return TableResult(
        name="table3",
        title="Table III: performance degradation attack (colour field, L2 distance)",
        rows=rows,
        columns=["model", "method", "case", "l2", "accuracy_pct", "aiou_pct",
                 "clean_accuracy_pct", "accuracy_drop_pct"],
        metadata={"num_scenes": num_scenes, "cells": cells},
    )


def run_table3(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table III on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table3(context.config), context)


__all__ = ["run_table3", "plan_table3", "MODELS"]
