"""Table III — performance degradation across the three PCSS models.

For every model (PointNet++, ResGCN, RandLA-Net) and every method (random
noise baseline, norm-unbounded, norm-bounded) the colour field is attacked
and the L2 distance, accuracy and aIoU are reported for the best / average /
worst cloud.  The random-noise baseline is matched to the L2 budget actually
used by the norm-unbounded attack, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import AttackResult, run_attack
from ..metrics.summary import summarize_outcomes
from .context import ExperimentContext
from .reporting import TableResult

MODELS = ("pointnet2", "resgcn", "randlanet")


def _summarize(results: List[AttackResult]) -> Dict[str, object]:
    summary = summarize_outcomes([r.outcome for r in results])
    by_accuracy = sorted(results, key=lambda r: r.outcome.accuracy)
    return {
        "summary": summary,
        "l2": {
            "best": by_accuracy[0].l2,
            "avg": float(np.mean([r.l2 for r in results])),
            "worst": by_accuracy[-1].l2,
        },
    }


def run_table3(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table III on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    scenes = context.s3dis_attack_pool()

    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, object]] = {}
    for model_name in MODELS:
        model = context.model(model_name, "s3dis")

        unbounded_cfg = context.attack_config(objective="degradation",
                                              method="unbounded", field="color")
        bounded_cfg = context.attack_config(objective="degradation",
                                            method="bounded", field="color")
        noise_cfg = context.attack_config(objective="degradation",
                                          method="noise", field="color")

        unbounded_results = [run_attack(model, scene, unbounded_cfg) for scene in scenes]
        bounded_results = [run_attack(model, scene, bounded_cfg) for scene in scenes]
        noise_results = [
            run_attack(model, scene, noise_cfg, target_l2=result.l2)
            for scene, result in zip(scenes, unbounded_results)
        ]

        for method, results in (("noise", noise_results),
                                ("unbounded", unbounded_results),
                                ("bounded", bounded_results)):
            cell = _summarize(results)
            cells[f"{model_name}/{method}"] = cell
            summary = cell["summary"]
            for case in ("best", "avg", "worst"):
                case_summary = {"best": summary.best, "avg": summary.average,
                                "worst": summary.worst}[case]
                rows.append({
                    "model": model_name,
                    "method": method,
                    "case": case,
                    "l2": cell["l2"][case],
                    "accuracy_pct": case_summary.accuracy * 100.0,
                    "aiou_pct": case_summary.aiou * 100.0,
                    "clean_accuracy_pct": summary.clean_accuracy * 100.0,
                    "accuracy_drop_pct": (summary.clean_accuracy
                                          - case_summary.accuracy) * 100.0,
                })

    return TableResult(
        name="table3",
        title="Table III: performance degradation attack (colour field, L2 distance)",
        rows=rows,
        columns=["model", "method", "case", "l2", "accuracy_pct", "aiou_pct",
                 "clean_accuracy_pct", "accuracy_drop_pct"],
        metadata={"num_scenes": len(scenes), "cells": cells},
    )


__all__ = ["run_table3", "MODELS"]
