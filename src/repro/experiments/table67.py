"""Tables VI and VII — attacks on the outdoor (Semantic3D-like) dataset.

Only RandLA-Net is attacked because the other two models are not built for
outdoor-scale clouds (Section V-E).

* Table VI — performance degradation, norm-unbounded vs. the L2-matched
  random-noise baseline, best / average / worst.
* Table VII — object hiding: cars are perturbed towards man-made terrain,
  natural terrain, high vegetation and low vegetation (Finding 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import run_attack, run_attack_batch
from ..datasets.semantic3d import CLASS_INDEX, PAPER_LABELS, SEMANTIC3D_CLASS_NAMES
from ..metrics.summary import mean_field, summarize_outcomes
from .context import ExperimentContext
from .reporting import TableResult

HIDING_SOURCE_CLASS = "cars"
HIDING_TARGET_CLASSES = ("man-made terrain", "natural terrain",
                         "high vegetation", "low vegetation")


def run_table6(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table VI: outdoor performance degradation (RandLA-Net, Semantic3D)."""
    context = context or ExperimentContext()
    model = context.model("randlanet", "semantic3d")
    scenes = context.semantic3d_attack_pool()

    unbounded_cfg = context.attack_config(objective="degradation",
                                          method="unbounded", field="color",
                                          target_accuracy=1.0 / 8.0)
    noise_cfg = context.attack_config(objective="degradation",
                                      method="noise", field="color")

    unbounded_results = [run_attack(model, scene, unbounded_cfg) for scene in scenes]
    noise_results = [
        run_attack(model, scene, noise_cfg, target_l2=result.l2)
        for scene, result in zip(scenes, unbounded_results)
    ]

    rows: List[Dict[str, object]] = []
    cells: Dict[str, object] = {}
    for method, results in (("noise", noise_results), ("unbounded", unbounded_results)):
        summary = summarize_outcomes([r.outcome for r in results])
        by_accuracy = sorted(results, key=lambda r: r.outcome.accuracy)
        l2_by_case = {"best": by_accuracy[0].l2,
                      "avg": float(np.mean([r.l2 for r in results])),
                      "worst": by_accuracy[-1].l2}
        cells[method] = {"summary": summary, "l2": l2_by_case}
        for case in ("best", "avg", "worst"):
            case_summary = {"best": summary.best, "avg": summary.average,
                            "worst": summary.worst}[case]
            rows.append({
                "method": method,
                "case": case,
                "l2": l2_by_case[case],
                "accuracy_pct": case_summary.accuracy * 100.0,
                "aiou_pct": case_summary.aiou * 100.0,
                "clean_accuracy_pct": summary.clean_accuracy * 100.0,
            })

    return TableResult(
        name="table6",
        title="Table VI: performance degradation on Semantic3D (RandLA-Net)",
        rows=rows,
        columns=["method", "case", "l2", "accuracy_pct", "aiou_pct",
                 "clean_accuracy_pct"],
        metadata={"num_scenes": len(scenes), "cells": cells},
    )


def run_table7(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table VII: outdoor object hiding — cars hidden as terrain/vegetation."""
    context = context or ExperimentContext()
    model = context.model("randlanet", "semantic3d")
    scenes = context.semantic3d_attack_pool(count=context.config.hiding_scenes)
    source_index = CLASS_INDEX[HIDING_SOURCE_CLASS]

    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    for target_name in HIDING_TARGET_CLASSES:
        target_index = CLASS_INDEX[target_name]
        config = context.attack_config(
            objective="hiding", method="unbounded", field="color",
            source_class=source_index, target_class=target_index,
        )
        results = run_attack_batch(model, scenes, config)
        if not results:
            continue
        outcomes = [r.outcome for r in results]
        cell = {
            "l2": float(np.mean([r.l2 for r in results])),
            "psr": mean_field(outcomes, "psr"),
            "oob_accuracy": mean_field(outcomes, "oob_accuracy"),
            "accuracy": mean_field(outcomes, "accuracy"),
            "oob_aiou": mean_field(outcomes, "oob_aiou"),
            "aiou": mean_field(outcomes, "aiou"),
        }
        cells[target_name] = cell
        rows.append({
            "target_class": target_name,
            "target_label_paper": PAPER_LABELS[target_name],
            "l2": cell["l2"],
            "psr_pct": cell["psr"] * 100.0,
            "oob_acc_pct": cell["oob_accuracy"] * 100.0,
            "acc_pct": cell["accuracy"] * 100.0,
            "oob_aiou_pct": cell["oob_aiou"] * 100.0,
            "aiou_pct": cell["aiou"] * 100.0,
        })

    return TableResult(
        name="table7",
        title="Table VII: object hiding on Semantic3D (cars -> terrain/vegetation)",
        rows=rows,
        columns=["target_class", "target_label_paper", "l2", "psr_pct",
                 "oob_acc_pct", "acc_pct", "oob_aiou_pct", "aiou_pct"],
        metadata={
            "source_class": HIDING_SOURCE_CLASS,
            "source_label_paper": PAPER_LABELS[HIDING_SOURCE_CLASS],
            "num_scenes": len(scenes),
            "cells": cells,
            "class_names": list(SEMANTIC3D_CLASS_NAMES),
        },
    )


__all__ = ["run_table6", "run_table7", "HIDING_SOURCE_CLASS", "HIDING_TARGET_CLASSES"]
