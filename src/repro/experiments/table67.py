"""Tables VI and VII — attacks on the outdoor (Semantic3D-like) dataset.

Only RandLA-Net is attacked because the other two models are not built for
outdoor-scale clouds (Section V-E).

* Table VI — performance degradation, norm-unbounded vs. the L2-matched
  random-noise baseline, best / average / worst.
* Table VII — object hiding: cars are perturbed towards man-made terrain,
  natural terrain, high vegetation and low vegetation (Finding 6).

Both tables are pipeline plans over per-cell attack tasks; the Table VI
noise cell depends on the unbounded cell for its per-scene L2 budgets.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..datasets.semantic3d import CLASS_INDEX, PAPER_LABELS, SEMANTIC3D_CLASS_NAMES
from ..metrics.summary import mean_field, summarize_outcomes
from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

HIDING_SOURCE_CLASS = "cars"
HIDING_TARGET_CLASSES = ("man-made terrain", "natural terrain",
                         "high vegetation", "low vegetation")


# ---------------------------------------------------------------------- #
# Table VI
# ---------------------------------------------------------------------- #
def plan_table6(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → RandLA-Net → unbounded + matched-noise cells."""
    graph = TaskGraph(result="table6:result")
    model_id = add_model_task(graph, "randlanet", "semantic3d")
    pool = pool_spec("semantic3d", count=config.attack_scenes)
    graph.add(Task("table6/unbounded", "attack_cell", {
        "model": "randlanet", "dataset": "semantic3d", "pool": pool,
        "attack": {"objective": "degradation", "method": "unbounded",
                   "field": "color", "target_accuracy": 1.0 / 8.0},
    }, deps=(model_id,)))
    graph.add(Task("table6/noise", "attack_cell", {
        "model": "randlanet", "dataset": "semantic3d", "pool": pool,
        "attack": {"objective": "degradation", "method": "noise",
                   "field": "color"},
        "match_l2_from": "table6/unbounded",
    }, deps=(model_id, "table6/unbounded")))
    graph.add(Task("table6:result", "table6:assemble", {},
                   deps=("table6/noise", "table6/unbounded"), cacheable=False))
    return graph


@register_executor("table6:assemble")
def _assemble_table6(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    cells: Dict[str, object] = {}
    num_scenes = 0
    for method in ("noise", "unbounded"):
        payload = deps[f"table6/{method}"]
        num_scenes = payload["num_scenes"]
        records = payload["records"]
        summary = summarize_outcomes([r["outcome"] for r in records])
        by_accuracy = sorted(records, key=lambda r: r["outcome"].accuracy)
        l2_by_case = {"best": by_accuracy[0]["l2"],
                      "avg": float(np.mean([r["l2"] for r in records])),
                      "worst": by_accuracy[-1]["l2"]}
        cells[method] = {"summary": summary, "l2": l2_by_case}
        for case in ("best", "avg", "worst"):
            case_summary = {"best": summary.best, "avg": summary.average,
                            "worst": summary.worst}[case]
            rows.append({
                "method": method,
                "case": case,
                "l2": l2_by_case[case],
                "accuracy_pct": case_summary.accuracy * 100.0,
                "aiou_pct": case_summary.aiou * 100.0,
                "clean_accuracy_pct": summary.clean_accuracy * 100.0,
            })

    return TableResult(
        name="table6",
        title="Table VI: performance degradation on Semantic3D (RandLA-Net)",
        rows=rows,
        columns=["method", "case", "l2", "accuracy_pct", "aiou_pct",
                 "clean_accuracy_pct"],
        metadata={"num_scenes": num_scenes, "cells": cells},
    )


def run_table6(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table VI: outdoor performance degradation (RandLA-Net, Semantic3D)."""
    context = context or ExperimentContext()
    return execute_plan(plan_table6(context.config), context)


# ---------------------------------------------------------------------- #
# Table VII
# ---------------------------------------------------------------------- #
def _table7_cell_id(target_name: str) -> str:
    return f"table7/{target_name}"


def plan_table7(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → RandLA-Net → one hiding cell per target class."""
    graph = TaskGraph(result="table7:result")
    model_id = add_model_task(graph, "randlanet", "semantic3d")
    pool = pool_spec("semantic3d", count=config.hiding_scenes)
    source_index = CLASS_INDEX[HIDING_SOURCE_CLASS]
    cell_ids: List[str] = []
    for target_name in HIDING_TARGET_CLASSES:
        graph.add(Task(_table7_cell_id(target_name), "attack_cell", {
            "model": "randlanet", "dataset": "semantic3d", "pool": pool,
            "attack": {"objective": "hiding", "method": "unbounded",
                       "field": "color", "source_class": source_index,
                       "target_class": CLASS_INDEX[target_name]},
            "mode": "batch",
        }, deps=(model_id,)))
        cell_ids.append(_table7_cell_id(target_name))
    graph.add(Task("table7:result", "table7:assemble", {},
                   deps=tuple(cell_ids), cacheable=False))
    return graph


@register_executor("table7:assemble")
def _assemble_table7(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    num_scenes = 0
    for target_name in HIDING_TARGET_CLASSES:
        payload = deps[_table7_cell_id(target_name)]
        num_scenes = payload["num_scenes"]
        records = payload["records"]
        if not records:
            continue
        outcomes = [r["outcome"] for r in records]
        cell = {
            "l2": float(np.mean([r["l2"] for r in records])),
            "psr": mean_field(outcomes, "psr"),
            "oob_accuracy": mean_field(outcomes, "oob_accuracy"),
            "accuracy": mean_field(outcomes, "accuracy"),
            "oob_aiou": mean_field(outcomes, "oob_aiou"),
            "aiou": mean_field(outcomes, "aiou"),
        }
        cells[target_name] = cell
        rows.append({
            "target_class": target_name,
            "target_label_paper": PAPER_LABELS[target_name],
            "l2": cell["l2"],
            "psr_pct": cell["psr"] * 100.0,
            "oob_acc_pct": cell["oob_accuracy"] * 100.0,
            "acc_pct": cell["accuracy"] * 100.0,
            "oob_aiou_pct": cell["oob_aiou"] * 100.0,
            "aiou_pct": cell["aiou"] * 100.0,
        })

    return TableResult(
        name="table7",
        title="Table VII: object hiding on Semantic3D (cars -> terrain/vegetation)",
        rows=rows,
        columns=["target_class", "target_label_paper", "l2", "psr_pct",
                 "oob_acc_pct", "acc_pct", "oob_aiou_pct", "aiou_pct"],
        metadata={
            "source_class": HIDING_SOURCE_CLASS,
            "source_label_paper": PAPER_LABELS[HIDING_SOURCE_CLASS],
            "num_scenes": num_scenes,
            "cells": cells,
            "class_names": list(SEMANTIC3D_CLASS_NAMES),
        },
    )


def run_table7(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table VII: outdoor object hiding — cars hidden as terrain/vegetation."""
    context = context or ExperimentContext()
    return execute_plan(plan_table7(context.config), context)


__all__ = ["run_table6", "run_table7", "plan_table6", "plan_table7",
           "HIDING_SOURCE_CLASS", "HIDING_TARGET_CLASSES"]
