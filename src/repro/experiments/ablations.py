"""Ablation studies for the attack design choices called out in DESIGN.md.

These go beyond the paper's tables and quantify:

* the effect of the smoothness-penalty weight λ₂ (Eq. 9) on the
  norm-unbounded attack's distance/effectiveness trade-off;
* the effect of the ε budget on the norm-bounded attack;
* the effect of the iteration budget on the norm-unbounded attack;
* the neighbourhood-change effect behind Finding 1 (how strongly coordinate
  perturbations disturb the k-NN structure compared with colour ones).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import run_attack
from ..geometry.sampling import neighbourhood_change_ratio
from .context import ExperimentContext
from .reporting import TableResult


def run_lambda2_ablation(context: Optional[ExperimentContext] = None,
                         values: Sequence[float] = (0.0, 0.1, 1.0)) -> TableResult:
    """Sweep the smoothness weight λ₂ of the norm-unbounded attack."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scene = context.s3dis_attack_pool(count=1)[0]

    rows: List[Dict[str, object]] = []
    for lambda2 in values:
        config = context.attack_config(objective="degradation", method="unbounded",
                                       field="color", lambda2=lambda2)
        result = run_attack(model, scene, config)
        rows.append({
            "lambda2": lambda2,
            "l2": result.l2,
            "accuracy_pct": result.outcome.accuracy * 100.0,
            "aiou_pct": result.outcome.aiou * 100.0,
            "iterations": result.iterations,
        })
    return TableResult(
        name="ablation_lambda2",
        title="Ablation: smoothness-penalty weight λ2 (norm-unbounded, colour)",
        rows=rows,
        columns=["lambda2", "l2", "accuracy_pct", "aiou_pct", "iterations"],
    )


def run_epsilon_ablation(context: Optional[ExperimentContext] = None,
                         values: Sequence[float] = (0.05, 0.10, 0.20)) -> TableResult:
    """Sweep the ε budget of the norm-bounded attack."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scene = context.s3dis_attack_pool(count=1)[0]

    rows: List[Dict[str, object]] = []
    for epsilon in values:
        config = context.attack_config(objective="degradation", method="bounded",
                                       field="color", epsilon=epsilon)
        result = run_attack(model, scene, config)
        rows.append({
            "epsilon": epsilon,
            "l2": result.l2,
            "linf": result.linf,
            "accuracy_pct": result.outcome.accuracy * 100.0,
            "aiou_pct": result.outcome.aiou * 100.0,
        })
    return TableResult(
        name="ablation_epsilon",
        title="Ablation: ε budget of the norm-bounded attack (colour)",
        rows=rows,
        columns=["epsilon", "l2", "linf", "accuracy_pct", "aiou_pct"],
    )


def run_steps_ablation(context: Optional[ExperimentContext] = None,
                       values: Sequence[int] = (10, 30, 60)) -> TableResult:
    """Sweep the iteration budget of the norm-unbounded attack."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scene = context.s3dis_attack_pool(count=1)[0]

    rows: List[Dict[str, object]] = []
    for steps in values:
        config = context.attack_config(objective="degradation", method="unbounded",
                                       field="color", unbounded_steps=steps,
                                       target_accuracy=0.0)
        result = run_attack(model, scene, config)
        rows.append({
            "steps": steps,
            "l2": result.l2,
            "accuracy_pct": result.outcome.accuracy * 100.0,
            "aiou_pct": result.outcome.aiou * 100.0,
        })
    return TableResult(
        name="ablation_steps",
        title="Ablation: iteration budget of the norm-unbounded attack (colour)",
        rows=rows,
        columns=["steps", "l2", "accuracy_pct", "aiou_pct"],
    )


def run_neighbourhood_ablation(context: Optional[ExperimentContext] = None,
                               k: int = 16) -> TableResult:
    """Quantify Finding 1's mechanism: perturbed coordinates scramble k-NN sets.

    The paper reports that over 88 % of neighbourhood memberships change after
    coordinate perturbation, while colour perturbation cannot change them at
    all (the graph is built from coordinates only).
    """
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scene = context.s3dis_attack_pool(count=1)[0]

    rows: List[Dict[str, object]] = []
    for field in ("color", "coordinate"):
        config = context.attack_config(objective="degradation", method="unbounded",
                                       field=field)
        result = run_attack(model, scene, config)
        ratio = neighbourhood_change_ratio(result.original_coords,
                                           result.adversarial_coords, k=k)
        rows.append({
            "field": field,
            "neighbourhood_change_pct": ratio * 100.0,
            "accuracy_pct": result.outcome.accuracy * 100.0,
            "l0": result.l0,
        })
    return TableResult(
        name="ablation_neighbourhood",
        title="Ablation: k-NN neighbourhood churn caused by each attacked field",
        rows=rows,
        columns=["field", "neighbourhood_change_pct", "accuracy_pct", "l0"],
        metadata={"k": k},
    )


def run_all_ablations(context: Optional[ExperimentContext] = None) -> Dict[str, TableResult]:
    """Run every ablation and return them keyed by name."""
    context = context or ExperimentContext()
    tables = [
        run_lambda2_ablation(context),
        run_epsilon_ablation(context),
        run_steps_ablation(context),
        run_neighbourhood_ablation(context),
    ]
    return {table.name: table for table in tables}


__all__ = [
    "run_lambda2_ablation",
    "run_epsilon_ablation",
    "run_steps_ablation",
    "run_neighbourhood_ablation",
    "run_all_ablations",
]
