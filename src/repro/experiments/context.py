"""Shared experiment context: datasets, trained models and attack configs.

Every table/figure runner needs the same ingredients — synthetic datasets, a
trained victim model per architecture, and an attack configuration.  The
:class:`ExperimentContext` builds them lazily and caches the expensive pieces
(trained model weights) on disk so the whole benchmark suite trains each model
at most once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import AttackConfig
from ..datasets.base import PointCloudScene, SceneDataset
from ..datasets.s3dis import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from ..datasets.semantic3d import (
    generate_outdoor_scene,
    generate_semantic3d_dataset,
    semantic3d_train_test_split,
)
from ..models.base import SegmentationModel
from ..models.registry import build_model
from ..models.train import TrainingConfig, train_or_load


@dataclass
class ExperimentConfig:
    """Scale knobs of the experiment harness.

    ``default()`` is sized for CPU-only benchmark runs (minutes);
    ``paper_scale()`` restores the paper's cloud sizes and step counts
    (hours on CPU, matching the original GPU budget).
    """

    # Dataset scale.
    s3dis_points: int = 320
    s3dis_scenes_per_area: int = 2
    semantic3d_points: int = 768
    semantic3d_scenes: int = 8
    attack_scenes: int = 3            # clouds attacked per table cell
    hiding_scenes: int = 2            # clouds per source class in Tables IV/V

    # Model scale.
    hidden: int = 24
    resgcn_blocks: int = 4
    training_epochs: int = 25
    training_lr: float = 8e-3

    # Attack scale.
    attack_profile: str = "fast"      # "fast" or "paper"

    # Threat model (repro.core.blackbox).  ``attack_mode`` selects the
    # engine family every cell runs with unless a plan overrides it
    # per-cell; ``query_budget`` / ``samples_per_step`` default to ``None``,
    # meaning "use the attack profile's own value".  Unlike ``batch_scenes``
    # these knobs change *what* is computed, so they participate in the
    # result-store content hashes (they are not in ``salt_exclusions``).
    attack_mode: str = "whitebox"
    query_budget: Optional[int] = None
    samples_per_step: Optional[int] = None

    # Adaptive (defense-aware) attacks: the EOT sample count K every
    # adaptive cell folds into its optimisation steps.  ``None`` means "use
    # the experiment's own default" (``table_defenses`` picks 4 at the fast
    # profile, 8 at paper scale).  Like the black-box knobs — and unlike
    # ``batch_scenes`` — this changes *what* is computed, so it participates
    # in the result-store content hashes.
    eot_samples: Optional[int] = None

    # Execution strategy: how many same-size scenes one attack loop drives
    # at once (``AttackConfig.batch_scenes``).  Purely an execution knob —
    # results are bit-identical at any value — so it is excluded from the
    # result-store content hashes (see :meth:`salt_exclusions`) and batched
    # runs share cached cells with serial ones.
    batch_scenes: int = 1

    # Compiled tensor engine (repro.nn.compile).  ``graph_capture`` is an
    # execution knob like ``batch_scenes`` — compiled replay is bit-for-bit
    # identical to eager, so it is excluded from the content hashes and
    # captured/eager runs share cached cells.  ``tensor_backend`` is not:
    # torch execution is allclose to NumPy, never bitwise, so the resolved
    # backend participates in the salt (see :meth:`compute_policy_salt`).
    tensor_backend: str = "numpy"
    graph_capture: bool = True

    # Misc.
    seed: int = 0
    cache_dir: str = field(default_factory=lambda: os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.getcwd(), ".repro_cache")))

    @classmethod
    def default(cls, **overrides) -> "ExperimentConfig":
        return cls(**overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        values = dict(
            s3dis_points=4096, s3dis_scenes_per_area=16,
            semantic3d_points=40960, semantic3d_scenes=8,
            attack_scenes=100, hiding_scenes=100,
            hidden=64, resgcn_blocks=28, training_epochs=60,
            attack_profile="paper",
        )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def tiny(cls, **overrides) -> "ExperimentConfig":
        """Extra small configuration used by the unit/integration tests."""
        values = dict(
            s3dis_points=192, s3dis_scenes_per_area=1, semantic3d_points=256,
            semantic3d_scenes=3, attack_scenes=1, hiding_scenes=1,
            hidden=16, resgcn_blocks=2, training_epochs=4,
        )
        values.update(overrides)
        return cls(**values)

    @staticmethod
    def salt_exclusions() -> Tuple[str, ...]:
        """Config fields that must not participate in result-store hashing.

        Consumed (duck-typed) by :func:`repro.pipeline.scheduler.config_salt`.
        ``batch_scenes`` and ``graph_capture`` only change *how* cells
        execute, never what they compute, so a store populated serially (or
        eagerly) serves batched (or plan-replayed) runs and vice versa.
        """
        return ("batch_scenes", "graph_capture")

    def compute_policy_salt(self) -> Dict[str, object]:
        """The resolved :mod:`repro.accel` policy this profile's attacks use.

        Consumed by the pipeline scheduler's content hashing (duck-typed —
        the pipeline layer stays ignorant of attack semantics), so results
        cached under one compute policy are never served to another: the
        policy combines the attack profile's defaults with any
        ``REPRO_ACCEL`` environment override.
        """
        from ..accel import ComputePolicy
        from ..core.config import AttackConfig

        base = (AttackConfig.paper_scale(tensor_backend=self.tensor_backend)
                if self.attack_profile == "paper"
                else AttackConfig.fast(tensor_backend=self.tensor_backend))
        policy = ComputePolicy.from_attack_config(base)
        return {"dtype": str(policy.dtype),
                "neighbor_refresh": policy.neighbor_refresh,
                "smoothness_neighbors": policy.smoothness_neighbors,
                # The resolved plan backend (config + REPRO_BACKEND): torch
                # results are allclose to NumPy, never bitwise, so the two
                # backends must not share a cache namespace.  graph_capture
                # is deliberately absent — replay is bitwise-neutral.
                "tensor_backend": policy.tensor_backend,
                # A REPRO_ACCEL override trumps per-cell compute overrides at
                # runtime while cell params still hash them, so override and
                # non-override runs must never share a cache namespace.
                "env_override": os.environ.get("REPRO_ACCEL") or None}


class ExperimentContext:
    """Lazily built, cached datasets and victim models.

    A context is cheap to construct and deterministic given its config:
    datasets regenerate from the seed and model weights come from the
    on-disk checkpoint cache.  The pipeline exploits this by building one
    context *per worker process* instead of sharing live objects.

    Parameters
    ----------
    pipeline:
        Optional :class:`repro.pipeline.PipelineSession`.  When present,
        every ``run_table*`` call submits its task graph through the
        session's scheduler (worker pool and/or content-addressed result
        store) instead of executing inline.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None,
                 pipeline=None) -> None:
        self.config = config or ExperimentConfig.default()
        self.pipeline = pipeline
        self._s3dis: Optional[SceneDataset] = None
        self._semantic3d: Optional[SceneDataset] = None
        self._models: Dict[str, SegmentationModel] = {}
        self._attack_pools: Dict[str, List[PointCloudScene]] = {}
        os.makedirs(self.config.cache_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    def s3dis(self) -> SceneDataset:
        if self._s3dis is None:
            self._s3dis = generate_s3dis_dataset(
                scenes_per_area=self.config.s3dis_scenes_per_area,
                num_points=self.config.s3dis_points,
                seed=self.config.seed,
            )
        return self._s3dis

    def s3dis_split(self):
        return s3dis_train_test_split(self.s3dis())

    def semantic3d(self) -> SceneDataset:
        if self._semantic3d is None:
            self._semantic3d = generate_semantic3d_dataset(
                num_scenes=self.config.semantic3d_scenes,
                num_points=self.config.semantic3d_points,
                seed=self.config.seed,
            )
        return self._semantic3d

    def semantic3d_split(self):
        return semantic3d_train_test_split(self.semantic3d())

    def s3dis_attack_pool(self, count: Optional[int] = None,
                          room_type: str = "office") -> List[PointCloudScene]:
        """Held-out indoor scenes used as attack targets (the "Area 5" role)."""
        count = count or self.config.attack_scenes
        key = f"s3dis:{room_type}:{count}"
        if key not in self._attack_pools:
            rng = np.random.default_rng(self.config.seed + 1000)
            self._attack_pools[key] = [
                generate_room_scene(num_points=self.config.s3dis_points,
                                    room_type=room_type, rng=rng,
                                    name=f"Area_5/{room_type}_attack_{i + 1}")
                for i in range(count)
            ]
        return self._attack_pools[key]

    def semantic3d_attack_pool(self, count: Optional[int] = None) -> List[PointCloudScene]:
        """Held-out outdoor scenes used as attack targets."""
        count = count or self.config.attack_scenes
        key = f"semantic3d:{count}"
        if key not in self._attack_pools:
            rng = np.random.default_rng(self.config.seed + 2000)
            self._attack_pools[key] = [
                generate_outdoor_scene(num_points=self.config.semantic3d_points,
                                       rng=rng, name=f"outdoor_attack_{i + 1}")
                for i in range(count)
            ]
        return self._attack_pools[key]

    # ------------------------------------------------------------------ #
    # Models
    # ------------------------------------------------------------------ #
    def _model_kwargs(self, name: str) -> Dict:
        kwargs: Dict = {"hidden": self.config.hidden, "seed": self.config.seed}
        if name == "resgcn":
            kwargs["num_blocks"] = self.config.resgcn_blocks
        return kwargs

    def model(self, name: str, dataset: str = "s3dis",
              seed_offset: int = 0) -> SegmentationModel:
        """Return a trained victim model, loading from the cache if possible."""
        key = f"{name}:{dataset}:{seed_offset}"
        if key in self._models:
            return self._models[key]

        if dataset == "s3dis":
            train_scenes, _ = self.s3dis_split()
            num_classes = 13
        elif dataset == "semantic3d":
            train_scenes, _ = self.semantic3d_split()
            num_classes = 8
        else:
            raise ValueError(f"unknown dataset {dataset!r}")

        kwargs = self._model_kwargs(name)
        kwargs["seed"] = self.config.seed + seed_offset
        model = build_model(name, num_classes=num_classes, **kwargs)
        cache_name = (f"{name}_{dataset}_h{self.config.hidden}"
                      f"_p{self.config.s3dis_points if dataset == 's3dis' else self.config.semantic3d_points}"
                      f"_e{self.config.training_epochs}_s{self.config.seed + seed_offset}.npz")
        cache_path = os.path.join(self.config.cache_dir, cache_name)
        training = TrainingConfig(
            epochs=self.config.training_epochs,
            learning_rate=self.config.training_lr,
            seed=self.config.seed + seed_offset,
        )
        train_or_load(model, train_scenes.scenes, cache_path, training)
        model.eval()
        self._models[key] = model
        return model

    # ------------------------------------------------------------------ #
    # Attack configurations
    # ------------------------------------------------------------------ #
    def attack_config(self, **overrides) -> AttackConfig:
        """Build an attack configuration at the context's scale profile.

        The context's ``batch_scenes`` execution knob is threaded through
        unless the caller overrides it explicitly.
        """
        overrides.setdefault("batch_scenes", self.config.batch_scenes)
        overrides.setdefault("tensor_backend", self.config.tensor_backend)
        overrides.setdefault("graph_capture", self.config.graph_capture)
        overrides.setdefault("attack_mode", self.config.attack_mode)
        if self.config.query_budget is not None:
            overrides.setdefault("query_budget", self.config.query_budget)
        if self.config.samples_per_step is not None:
            overrides.setdefault("samples_per_step", self.config.samples_per_step)
        if self.config.eot_samples is not None:
            overrides.setdefault("eot_samples", self.config.eot_samples)
        if self.config.attack_profile == "paper":
            return AttackConfig.paper_scale(**overrides)
        return AttackConfig.fast(**overrides)


__all__ = ["ExperimentConfig", "ExperimentContext"]
