"""Extension experiments beyond the paper's tables.

Two claims from the paper's discussion (Section VI / IV-B) are made testable
here:

* **Other models** — "We expect our attacks to be applicable to the models
  which generate gradients.  One example is Point Cloud Transformer (PCT)."
  :func:`run_pct_extension` trains the PCT-style model of
  :mod:`repro.models.pct` and attacks it with the same colour-based attacks.
* **Simultaneous vs. alternating field updates** — "An alternate approach is
  to perturb them in turns at different iterations.  However, we found this
  approach has a worse result."  :func:`run_alternating_ablation` compares the
  two schedules for the "both fields" attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import run_attack
from .context import ExperimentContext
from .reporting import TableResult


def run_pct_extension(context: Optional[ExperimentContext] = None) -> TableResult:
    """Attack the Point Cloud Transformer extension model (Section VI claim)."""
    context = context or ExperimentContext()
    model = context.model("pct", "s3dis")
    scenes = context.s3dis_attack_pool()

    rows: List[Dict[str, object]] = []
    cells: Dict[str, float] = {}
    for method in ("noise", "unbounded", "bounded"):
        config = context.attack_config(objective="degradation", method=method,
                                       field="color")
        results = [run_attack(model, scene, config) for scene in scenes]
        accuracy = float(np.mean([r.outcome.accuracy for r in results]))
        cells[method] = accuracy
        rows.append({
            "method": method,
            "l2": float(np.mean([r.l2 for r in results])),
            "accuracy_pct": accuracy * 100.0,
            "aiou_pct": float(np.mean([r.outcome.aiou for r in results])) * 100.0,
            "clean_accuracy_pct": float(np.mean(
                [r.outcome.clean_accuracy for r in results])) * 100.0,
        })

    return TableResult(
        name="extension_pct",
        title="Extension: colour attacks against a Point Cloud Transformer (PCT)",
        rows=rows,
        columns=["method", "l2", "accuracy_pct", "aiou_pct", "clean_accuracy_pct"],
        metadata={"cells": cells, "num_scenes": len(scenes)},
    )


def run_alternating_ablation(context: Optional[ExperimentContext] = None) -> TableResult:
    """Simultaneous vs. alternating colour+coordinate updates (Section IV-B)."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scenes = context.s3dis_attack_pool()

    rows: List[Dict[str, object]] = []
    cells: Dict[str, float] = {}
    for schedule, alternating in (("simultaneous", False), ("alternating", True)):
        config = context.attack_config(objective="degradation", method="unbounded",
                                       field="both", alternating_fields=alternating)
        results = [run_attack(model, scene, config) for scene in scenes]
        accuracy = float(np.mean([r.outcome.accuracy for r in results]))
        cells[schedule] = accuracy
        rows.append({
            "schedule": schedule,
            "accuracy_pct": accuracy * 100.0,
            "aiou_pct": float(np.mean([r.outcome.aiou for r in results])) * 100.0,
            "l2": float(np.mean([r.l2 for r in results])),
        })

    return TableResult(
        name="extension_alternating",
        title="Extension: simultaneous vs. alternating updates for the both-fields attack",
        rows=rows,
        columns=["schedule", "accuracy_pct", "aiou_pct", "l2"],
        metadata={"cells": cells, "num_scenes": len(scenes)},
    )


__all__ = ["run_pct_extension", "run_alternating_ablation"]
