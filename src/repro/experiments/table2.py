"""Table II — performance degradation on ResGCN, by attacked field.

Compares colour-based, coordinate-based and joint perturbations under both
the norm-bounded and norm-unbounded methods, reporting the L0 distance and
the best / average / worst attacked-cloud accuracy and aIoU (Finding 1:
colour is the more vulnerable field).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import run_attack_batch
from ..metrics.summary import summarize_outcomes
from .context import ExperimentContext
from .reporting import TableResult

_FIELDS = ("color", "coordinate", "both")
_METHODS = ("unbounded", "bounded")


def run_table2(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table II on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scenes = context.s3dis_attack_pool()

    rows: List[Dict[str, object]] = []
    raw: Dict[str, Dict[str, object]] = {}
    for field in _FIELDS:
        for method in _METHODS:
            config = context.attack_config(objective="degradation",
                                           method=method, field=field)
            results = run_attack_batch(model, scenes, config)
            outcomes = [r.outcome for r in results]
            summary = summarize_outcomes(outcomes)
            l0_values = sorted(r.l0 for r in results)
            cell_key = f"{field}/{method}"
            raw[cell_key] = {
                "summary": summary,
                "mean_l0": sum(r.l0 for r in results) / len(results),
                "mean_accuracy": summary.average.accuracy,
                "results": results,
            }
            for case, case_summary, l0 in (
                ("best", summary.best, l0_values[0]),
                ("avg", summary.average, sum(l0_values) / len(l0_values)),
                ("worst", summary.worst, l0_values[-1]),
            ):
                rows.append({
                    "field": field,
                    "method": method,
                    "case": case,
                    "l0": l0,
                    "accuracy_pct": case_summary.accuracy * 100.0,
                    "aiou_pct": case_summary.aiou * 100.0,
                })

    return TableResult(
        name="table2",
        title="Table II: performance degradation on ResGCN by attacked field",
        rows=rows,
        columns=["field", "method", "case", "l0", "accuracy_pct", "aiou_pct"],
        metadata={
            "model": model.model_name,
            "num_scenes": len(scenes),
            "cells": raw,
        },
    )


__all__ = ["run_table2"]
