"""Table II — performance degradation on ResGCN, by attacked field.

Compares colour-based, coordinate-based and joint perturbations under both
the norm-bounded and norm-unbounded methods, reporting the L0 distance and
the best / average / worst attacked-cloud accuracy and aIoU (Finding 1:
colour is the more vulnerable field).

Expressed as a pipeline plan: one attack cell per (field × method) plus a
final assembly task; ``run_table2`` executes the plan serially or through
the context's pipeline session.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..metrics.summary import summarize_outcomes
from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

_FIELDS = ("color", "coordinate", "both")
_METHODS = ("unbounded", "bounded")


def _cell_id(field: str, method: str) -> str:
    return f"table2/{field}/{method}"


def plan_table2(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → ResGCN → 6 attack cells → table assembly."""
    graph = TaskGraph(result="table2:result")
    model_id = add_model_task(graph, "resgcn", "s3dis")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    cell_ids: List[str] = []
    for field in _FIELDS:
        for method in _METHODS:
            graph.add(Task(_cell_id(field, method), "attack_cell", {
                "model": "resgcn", "dataset": "s3dis", "pool": pool,
                "attack": {"objective": "degradation", "method": method,
                           "field": field},
                "mode": "batch",
            }, deps=(model_id,)))
            cell_ids.append(_cell_id(field, method))
    graph.add(Task("table2:result", "table2:assemble", {},
                   deps=tuple(cell_ids), cacheable=False))
    return graph


@register_executor("table2:assemble")
def _assemble_table2(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    raw: Dict[str, Dict[str, object]] = {}
    model_name = ""
    num_scenes = 0
    for field in _FIELDS:
        for method in _METHODS:
            payload = deps[_cell_id(field, method)]
            model_name = payload["model_name"]
            num_scenes = payload["num_scenes"]
            records = payload["records"]
            summary = summarize_outcomes([r["outcome"] for r in records])
            l0_values = sorted(r["l0"] for r in records)
            raw[f"{field}/{method}"] = {
                "summary": summary,
                "mean_l0": sum(r["l0"] for r in records) / len(records),
                "mean_accuracy": summary.average.accuracy,
            }
            for case, case_summary, l0 in (
                ("best", summary.best, l0_values[0]),
                ("avg", summary.average, sum(l0_values) / len(l0_values)),
                ("worst", summary.worst, l0_values[-1]),
            ):
                rows.append({
                    "field": field,
                    "method": method,
                    "case": case,
                    "l0": l0,
                    "accuracy_pct": case_summary.accuracy * 100.0,
                    "aiou_pct": case_summary.aiou * 100.0,
                })

    return TableResult(
        name="table2",
        title="Table II: performance degradation on ResGCN by attacked field",
        rows=rows,
        columns=["field", "method", "case", "l0", "accuracy_pct", "aiou_pct"],
        metadata={
            "model": model_name,
            "num_scenes": num_scenes,
            "cells": raw,
        },
    )


def run_table2(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table II on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table2(context.config), context)


__all__ = ["run_table2", "plan_table2"]
