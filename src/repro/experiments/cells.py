"""Pipeline cell executors shared by the table runners.

Each paper table decomposes into *cells* — one attack batch per (model ×
method × field × class) combination — plus dataset and model-training
prerequisites and a final assembly step.  The executors here are the single
implementation of that cell work: the legacy ``run_table*`` entry points run
them serially in-process, and ``python -m repro.pipeline`` dispatches the
very same functions onto a worker pool, so the two paths are numerically
identical by construction.

Cell payloads are deliberately compact (per-scene outcome records rather
than full adversarial clouds) so they pickle cheaply across processes and
stay small inside the content-addressed result store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..core import (evaluate_transfer, run_attack, run_attack_batch,
                    run_attack_group)
from ..datasets.splits import prepare_scene
from ..defenses import (build_defense, evaluate_results_with_defense,
                        evaluate_with_defense)
from ..geometry.transforms import remap_range
from ..metrics.segmentation import accuracy_score
from ..pipeline.graph import Task, TaskGraph
from ..pipeline.scheduler import PipelineError, run_graph
from ..pipeline.worker import register_executor
from .context import ExperimentContext


# ---------------------------------------------------------------------- #
# Graph-building helpers
# ---------------------------------------------------------------------- #
def dataset_task_id(dataset: str) -> str:
    return f"dataset/{dataset}"


def model_task_id(name: str, dataset: str, seed_offset: int = 0) -> str:
    return f"model/{name}:{dataset}:{seed_offset}"


def add_dataset_task(graph: TaskGraph, dataset: str) -> str:
    """Ensure the dataset-generation task exists; returns its id."""
    task_id = dataset_task_id(dataset)
    graph.add_once(Task(task_id, "dataset", {"name": dataset}, cacheable=False))
    return task_id


def add_model_task(graph: TaskGraph, name: str, dataset: str,
                   seed_offset: int = 0) -> str:
    """Ensure the dataset → trained-model chain exists; returns the model id.

    Training tasks are not store-cached: the trained weights already live in
    the on-disk checkpoint cache keyed by their full configuration, so
    re-executing the task is a cheap load — and stays correct even when the
    checkpoint cache and the result store are cleared independently.
    """
    dataset_id = add_dataset_task(graph, dataset)
    task_id = model_task_id(name, dataset, seed_offset)
    graph.add_once(Task(task_id, "train_model",
                        {"name": name, "dataset": dataset,
                         "seed_offset": seed_offset},
                        deps=(dataset_id,), cacheable=False))
    return task_id


def pool_spec(dataset: str, count: Optional[int] = None,
              room_type: str = "office") -> Dict[str, Any]:
    """JSON description of an attack-target scene pool."""
    spec: Dict[str, Any] = {"dataset": dataset, "count": count}
    if dataset == "s3dis":
        spec["room_type"] = room_type
    return spec


def _pool_scenes(context: ExperimentContext, spec: Mapping[str, Any]):
    if spec["dataset"] == "s3dis":
        return context.s3dis_attack_pool(count=spec.get("count"),
                                         room_type=spec.get("room_type", "office"))
    if spec["dataset"] == "semantic3d":
        return context.semantic3d_attack_pool(count=spec.get("count"))
    raise ValueError(f"unknown attack pool dataset {spec['dataset']!r}")


def _record(result) -> Dict[str, Any]:
    """Per-scene summary shipped between processes instead of full clouds."""
    history = result.history
    return {
        "scene_name": result.scene_name,
        "l2": result.l2,
        "l0": result.l0,
        "linf": result.linf,
        "iterations": result.iterations,
        "converged": result.converged,
        "outcome": result.outcome,
        # Model queries the attacker spent (black-box engines track them in
        # their history; white-box cells report None).
        "queries": (history[-1].get("queries") if history else None),
    }


# ---------------------------------------------------------------------- #
# Plan execution (shared by every run_table* entry point)
# ---------------------------------------------------------------------- #
def execute_plan(graph: TaskGraph, context: ExperimentContext) -> Any:
    """Run an experiment plan and return its result-task output.

    When the context carries a :class:`~repro.pipeline.scheduler
    .PipelineSession` the graph is submitted through it (worker pool and/or
    result store); otherwise it executes serially in-process against the
    live context, matching the pre-pipeline behaviour byte for byte.
    """
    session = getattr(context, "pipeline", None)
    if session is not None:
        result = session.run(graph, context.config, context=context)
    else:
        result = run_graph(graph, context.config, jobs=1, context=context)
    if graph.result not in result.outputs:
        raise PipelineError(result.describe_failure())
    return result.outputs[graph.result]


# ---------------------------------------------------------------------- #
# Prerequisite executors
# ---------------------------------------------------------------------- #
@register_executor("dataset")
def _execute_dataset(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> Dict[str, Any]:
    name = params["name"]
    if name == "s3dis":
        dataset = context.s3dis()
    elif name == "semantic3d":
        dataset = context.semantic3d()
    else:
        raise ValueError(f"unknown dataset {name!r}")
    return {"name": name, "num_scenes": len(dataset),
            "num_classes": dataset.num_classes}


@register_executor("train_model")
def _execute_train_model(context: ExperimentContext, params: Mapping[str, Any],
                         deps: Mapping[str, Any]) -> Dict[str, Any]:
    model = context.model(params["name"], params["dataset"],
                          seed_offset=params.get("seed_offset", 0))
    return {"model_name": model.model_name,
            "num_parameters": sum(int(np.asarray(p.data).size)
                                  for p in model.parameters())}


# ---------------------------------------------------------------------- #
# Attack cell executors
# ---------------------------------------------------------------------- #
@register_executor("attack_cell")
def _execute_attack_cell(context: ExperimentContext, params: Mapping[str, Any],
                         deps: Mapping[str, Any]) -> Dict[str, Any]:
    """One table cell: a batch of attacks with a single configuration.

    ``mode="batch"`` mirrors :func:`repro.core.run_attack_batch` (scenes
    without the hiding source class are skipped); ``mode="per_scene"``
    attacks every scene, optionally matching the random-noise baseline to
    the per-scene L2 budget of the dependency named by ``match_l2_from``.
    """
    model = context.model(params["model"], params["dataset"],
                          seed_offset=params.get("seed_offset", 0))
    scenes = _pool_scenes(context, params["pool"])
    config = context.attack_config(**params["attack"])

    if params.get("mode", "per_scene") == "batch":
        results = run_attack_batch(model, scenes, config)
    elif params.get("match_l2_from"):
        budgets = [record["l2"] for record
                   in deps[params["match_l2_from"]]["records"]]
        results = [run_attack(model, scene, config, target_l2=budget)
                   for scene, budget in zip(scenes, budgets)]
    else:
        results = run_attack_group(model, scenes, config)

    return {"model_name": model.model_name, "num_scenes": len(scenes),
            "records": [_record(result) for result in results]}


def paper_defense_specs(context: ExperimentContext) -> List[Dict[str, Any]]:
    """Table VIII's defense grid as registry build specs.

    The paper's SRS sampling number is ~1 % of its clouds; on the much
    smaller synthetic scenes that count is scaled ×5 (i.e. ~5 % of the
    points are removed) so the defense's effect stays measurable.  SOR
    uses the paper's k=2.
    """
    srs_removed = max(1, int(round(0.01 * context.config.s3dis_points)) * 5)
    return [
        {"name": "srs",
         "kwargs": {"num_removed": srs_removed, "seed": context.config.seed}},
        {"name": "sor", "kwargs": {"k": 2, "std_multiplier": 1.0}},
    ]


def _build_defenses(context: ExperimentContext,
                    specs: Optional[List[Mapping[str, Any]]]) -> Dict[str, Any]:
    """``{display name: defense instance}`` (always led by the "none" row)."""
    if specs is None:
        specs = paper_defense_specs(context)
    defenses: Dict[str, Any] = {"none": None}
    for spec in specs:
        defense = build_defense(spec["name"], **dict(spec.get("kwargs") or {}))
        defenses[spec.get("label", spec["name"])] = defense
    return defenses


@register_executor("defense_cell")
def _execute_defense_cell(context: ExperimentContext, params: Mapping[str, Any],
                          deps: Mapping[str, Any]) -> Dict[str, Any]:
    """Attack once, then score every configured defense on the same clouds.

    ``params["defenses"]`` is a list of registry build specs (``{"name",
    "kwargs", "label"}``); omitted, the cell scores the paper's Table VIII
    grid (SRS + SOR).  The attack itself may carry the adaptive knobs
    (``adaptive`` / ``defense`` / ``eot_samples``) — that is how the
    ``table_defenses`` adaptive cells attack *through* the defense they are
    scored against.
    """
    model = context.model(params["model"], params["dataset"])
    scenes = _pool_scenes(context, params["pool"])
    config = context.attack_config(**params["attack"])
    results = run_attack_group(model, scenes, config)

    defenses = _build_defenses(context, params.get("defenses"))
    evaluations: Dict[str, List[Dict[str, float]]] = {}
    for defense_name, defense in defenses.items():
        evaluations[defense_name] = [
            vars(evaluation)
            for evaluation in evaluate_results_with_defense(model, defense,
                                                            results)
        ]
    return {"model_name": model.model_name, "num_scenes": len(scenes),
            "l2": [result.l2 for result in results],
            "evaluations": evaluations}


@register_executor("clean_eval")
def _execute_clean_eval(context: ExperimentContext, params: Mapping[str, Any],
                        deps: Mapping[str, Any]) -> Dict[str, Any]:
    """Model accuracy on (optionally defended) *clean* clouds.

    With a ``defenses`` spec list the payload also carries the defended
    clean accuracies per defense — the reference column of the defense
    tables.
    """
    model = context.model(params["model"], params["dataset"])
    scenes = _pool_scenes(context, params["pool"])
    prepared_scenes = [prepare_scene(scene, model.spec) for scene in scenes]
    payload: Dict[str, Any] = {"accuracy": [
        evaluate_with_defense(model, None, prepared.coords, prepared.colors,
                              prepared.labels).accuracy
        for prepared in prepared_scenes
    ]}
    if params.get("defenses"):
        # The undefended reference already lives in payload["accuracy"].
        defended: Dict[str, List[float]] = {}
        for name, defense in _build_defenses(context,
                                             params["defenses"]).items():
            if defense is None:
                continue
            defended[name] = [
                evaluate_with_defense(model, defense, prepared.coords,
                                      prepared.colors, prepared.labels).accuracy
                for prepared in prepared_scenes
            ]
        payload["defended_accuracy"] = defended
    return payload


@register_executor("transfer_cell")
def _execute_transfer_cell(context: ExperimentContext,
                           params: Mapping[str, Any],
                           deps: Mapping[str, Any]) -> Dict[str, Any]:
    """Table IX cell: attack the source model, replay on the target model."""
    source = params["source"]
    target = params["target"]
    source_model = context.model(source["name"], params["dataset"],
                                 seed_offset=source.get("seed_offset", 0))
    target_model = context.model(target["name"], params["dataset"],
                                 seed_offset=target.get("seed_offset", 0))
    scenes = _pool_scenes(context, params["pool"])
    config = context.attack_config(**params["attack"])
    results = run_attack_group(source_model, scenes, config)
    transfer = evaluate_transfer(results, source_model, target_model)
    clean = _clean_accuracy_on_transfer_target(results, source_model,
                                               target_model)
    return {"num_scenes": len(scenes), "transfer": transfer,
            "clean_accuracy": clean}


def _clean_accuracy_on_transfer_target(results, source_model,
                                       target_model) -> float:
    """Accuracy of the target model on the *unperturbed* clouds, remapped."""
    accuracies = []
    for result in results:
        coords = remap_range(result.original_coords,
                             source_model.spec.coord_range,
                             target_model.spec.coord_range)
        colors = np.clip(
            remap_range(result.original_colors, source_model.spec.color_range,
                        target_model.spec.color_range),
            *target_model.spec.color_range)
        prediction = target_model.predict_single(coords, colors)
        accuracies.append(accuracy_score(prediction, result.labels))
    return float(np.mean(accuracies))


__all__ = [
    "add_dataset_task",
    "add_model_task",
    "dataset_task_id",
    "execute_plan",
    "model_task_id",
    "paper_defense_specs",
    "pool_spec",
]
