"""Attack overhead measurement (Section V-C).

The paper reports the per-step cost of generating an adversarial example
(0.3 s per norm-bounded step, 0.2 s per norm-unbounded step on their GPU
workstation).  This runner measures the equivalent per-step wall-clock time
of this implementation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core import run_attack
from .context import ExperimentContext
from .reporting import TableResult


def run_overhead(context: Optional[ExperimentContext] = None,
                 steps: int = 10) -> TableResult:
    """Measure seconds-per-step for the two optimisation-based attacks."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scene = context.s3dis_attack_pool(count=1)[0]

    rows: List[Dict[str, object]] = []
    timings: Dict[str, float] = {}
    for method, step_key in (("bounded", "bounded_steps"),
                             ("unbounded", "unbounded_steps")):
        config = context.attack_config(objective="degradation", method=method,
                                       field="color",
                                       target_accuracy=0.0,   # never stop early
                                       **{step_key: steps})
        start = time.time()
        result = run_attack(model, scene, config)
        elapsed = time.time() - start
        per_step = elapsed / max(result.iterations, 1)
        timings[method] = per_step
        rows.append({
            "method": method,
            "steps": result.iterations,
            "total_seconds": elapsed,
            "seconds_per_step": per_step,
            "paper_seconds_per_step": 0.3 if method == "bounded" else 0.2,
        })

    return TableResult(
        name="overhead",
        title="Attack overhead: seconds per optimisation step (Section V-C)",
        rows=rows,
        columns=["method", "steps", "total_seconds", "seconds_per_step",
                 "paper_seconds_per_step"],
        metadata={"timings": timings, "num_points": context.config.s3dis_points},
    )


__all__ = ["run_overhead"]
