"""Table IX — attack transferability (Section V-G, Finding 8).

Two transfers are evaluated:

* adversarial samples generated against the "pre-trained" PointNet++ are fed
  to a *self-trained* PointNet++ (same architecture, different weights);
* adversarial samples generated against ResGCN are remapped to PointNet++'s
  input ranges and fed to PointNet++.

Each transfer is one pipeline cell (attack the source model, replay on the
target model); the assembly task formats the paper-style rows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

_ATTACK = {"objective": "degradation", "method": "unbounded", "field": "color"}


def plan_table9(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → three models → two transfer cells → assembly."""
    graph = TaskGraph(result="table9:result")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    pretrained_id = add_model_task(graph, "pointnet2", "s3dis", seed_offset=0)
    selftrained_id = add_model_task(graph, "pointnet2", "s3dis", seed_offset=1)
    resgcn_id = add_model_task(graph, "resgcn", "s3dis")
    graph.add(Task("table9/same_family", "transfer_cell", {
        "dataset": "s3dis", "pool": pool, "attack": _ATTACK,
        "source": {"name": "pointnet2", "seed_offset": 0},
        "target": {"name": "pointnet2", "seed_offset": 1},
    }, deps=(pretrained_id, selftrained_id)))
    graph.add(Task("table9/cross_family", "transfer_cell", {
        "dataset": "s3dis", "pool": pool, "attack": _ATTACK,
        "source": {"name": "resgcn", "seed_offset": 0},
        "target": {"name": "pointnet2", "seed_offset": 0},
    }, deps=(resgcn_id, pretrained_id)))
    graph.add(Task("table9:result", "table9:assemble", {},
                   deps=("table9/same_family", "table9/cross_family"),
                   cacheable=False))
    return graph


@register_executor("table9:assemble")
def _assemble_table9(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    same_payload = deps["table9/same_family"]
    cross_payload = deps["table9/cross_family"]
    same_family = same_payload["transfer"]
    cross_family = cross_payload["transfer"]

    rows: List[Dict[str, object]] = [
        {
            "transfer": "same architecture",
            "pcss_model": "PointNet++ (pre-trained)",
            "accuracy_pct": same_family.source_accuracy * 100.0,
            "aiou_pct": same_family.source_aiou * 100.0,
        },
        {
            "transfer": "same architecture",
            "pcss_model": "PointNet++ (self-trained)",
            "accuracy_pct": same_family.accuracy * 100.0,
            "aiou_pct": same_family.aiou * 100.0,
        },
        {
            "transfer": "cross family",
            "pcss_model": "ResGCN (source)",
            "accuracy_pct": cross_family.source_accuracy * 100.0,
            "aiou_pct": cross_family.source_aiou * 100.0,
        },
        {
            "transfer": "cross family",
            "pcss_model": "PointNet++ (target)",
            "accuracy_pct": cross_family.accuracy * 100.0,
            "aiou_pct": cross_family.aiou * 100.0,
        },
    ]

    cells: Dict[str, object] = {
        "same_family": same_family,
        "cross_family": cross_family,
        "same_family_clean_accuracy": same_payload["clean_accuracy"],
        "cross_family_clean_accuracy": cross_payload["clean_accuracy"],
    }
    return TableResult(
        name="table9",
        title="Table IX: transferability of norm-unbounded colour adversarial samples",
        rows=rows,
        columns=["transfer", "pcss_model", "accuracy_pct", "aiou_pct"],
        metadata={"num_scenes": same_payload["num_scenes"], "cells": cells},
    )


def run_table9(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table IX on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table9(context.config), context)


__all__ = ["run_table9", "plan_table9"]
