"""Table IX — attack transferability (Section V-G, Finding 8).

Two transfers are evaluated:

* adversarial samples generated against the "pre-trained" PointNet++ are fed
  to a *self-trained* PointNet++ (same architecture, different weights);
* adversarial samples generated against ResGCN are remapped to PointNet++'s
  input ranges and fed to PointNet++.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import evaluate_transfer, run_attack
from ..geometry.transforms import remap_range
from ..metrics.segmentation import accuracy_score
from .context import ExperimentContext
from .reporting import TableResult


def _clean_accuracy_on_transfer_target(results, source_model, target_model) -> float:
    """Accuracy of the target model on the *unperturbed* clouds, range-remapped."""
    accuracies = []
    for result in results:
        coords = remap_range(result.original_coords, source_model.spec.coord_range,
                             target_model.spec.coord_range)
        colors = np.clip(
            remap_range(result.original_colors, source_model.spec.color_range,
                        target_model.spec.color_range),
            *target_model.spec.color_range)
        prediction = target_model.predict_single(coords, colors)
        accuracies.append(accuracy_score(prediction, result.labels))
    return float(np.mean(accuracies))


def run_table9(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table IX on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    scenes = context.s3dis_attack_pool()
    config = context.attack_config(objective="degradation", method="unbounded",
                                   field="color")

    pointnet_pretrained = context.model("pointnet2", "s3dis", seed_offset=0)
    pointnet_selftrained = context.model("pointnet2", "s3dis", seed_offset=1)
    resgcn = context.model("resgcn", "s3dis")

    pointnet_results = [run_attack(pointnet_pretrained, scene, config)
                        for scene in scenes]
    resgcn_results = [run_attack(resgcn, scene, config) for scene in scenes]

    same_family = evaluate_transfer(pointnet_results, pointnet_pretrained,
                                    pointnet_selftrained)
    cross_family = evaluate_transfer(resgcn_results, resgcn, pointnet_pretrained)
    same_family_clean = _clean_accuracy_on_transfer_target(
        pointnet_results, pointnet_pretrained, pointnet_selftrained)
    cross_family_clean = _clean_accuracy_on_transfer_target(
        resgcn_results, resgcn, pointnet_pretrained)

    rows: List[Dict[str, object]] = [
        {
            "transfer": "same architecture",
            "pcss_model": "PointNet++ (pre-trained)",
            "accuracy_pct": same_family.source_accuracy * 100.0,
            "aiou_pct": same_family.source_aiou * 100.0,
        },
        {
            "transfer": "same architecture",
            "pcss_model": "PointNet++ (self-trained)",
            "accuracy_pct": same_family.accuracy * 100.0,
            "aiou_pct": same_family.aiou * 100.0,
        },
        {
            "transfer": "cross family",
            "pcss_model": "ResGCN (source)",
            "accuracy_pct": cross_family.source_accuracy * 100.0,
            "aiou_pct": cross_family.source_aiou * 100.0,
        },
        {
            "transfer": "cross family",
            "pcss_model": "PointNet++ (target)",
            "accuracy_pct": cross_family.accuracy * 100.0,
            "aiou_pct": cross_family.aiou * 100.0,
        },
    ]

    cells: Dict[str, object] = {
        "same_family": same_family,
        "cross_family": cross_family,
        "same_family_clean_accuracy": same_family_clean,
        "cross_family_clean_accuracy": cross_family_clean,
    }
    return TableResult(
        name="table9",
        title="Table IX: transferability of norm-unbounded colour adversarial samples",
        rows=rows,
        columns=["transfer", "pcss_model", "accuracy_pct", "aiou_pct"],
        metadata={"num_scenes": len(scenes), "cells": cells},
    )


__all__ = ["run_table9"]
