"""Table VIII — anomaly-detection defenses (SRS, SOR) against both attacks.

ResGCN is attacked on S3DIS under the performance-degradation objective with
the norm-bounded and norm-unbounded methods; the resulting adversarial clouds
are then filtered by Simple Random Sampling and Statistical Outlier Removal
before re-segmentation (Finding 7).

One pipeline cell per attack method runs the attacks and scores all three
defenses on the same clouds (so the attack cost is paid once per method); a
separate cell evaluates the defended *clean* clouds as the reference.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

_METHODS = ("bounded", "unbounded")
_DEFENSES = ("none", "srs", "sor")


def nan_safe_mean(values) -> float:
    """Mean over the scenes a defense left scoreable.

    Empty defended clouds report NaN (see ``repro.defenses.base``); they are
    excluded from cell means, and a cell with *no* scoreable scene is NaN.
    """
    values = np.asarray(list(values), dtype=np.float64)
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        return float("nan")
    return float(finite.mean())


def _cell_id(method: str) -> str:
    return f"table8/{method}"


def plan_table8(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → ResGCN → per-method defense cells → assembly."""
    graph = TaskGraph(result="table8:result")
    model_id = add_model_task(graph, "resgcn", "s3dis")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    cell_ids: List[str] = []
    for method in _METHODS:
        graph.add(Task(_cell_id(method), "defense_cell", {
            "model": "resgcn", "dataset": "s3dis", "pool": pool,
            "attack": {"objective": "degradation", "method": method,
                       "field": "color"},
        }, deps=(model_id,)))
        cell_ids.append(_cell_id(method))
    graph.add(Task("table8/clean", "clean_eval", {
        "model": "resgcn", "dataset": "s3dis", "pool": pool,
    }, deps=(model_id,)))
    graph.add(Task("table8:result", "table8:assemble", {},
                   deps=tuple(cell_ids) + ("table8/clean",), cacheable=False))
    return graph


@register_executor("table8:assemble")
def _assemble_table8(context: ExperimentContext, params: Mapping[str, Any],
                     deps: Mapping[str, Any]) -> TableResult:
    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    num_scenes = 0
    for method in _METHODS:
        payload = deps[_cell_id(method)]
        num_scenes = payload["num_scenes"]
        mean_l2 = float(np.mean(payload["l2"]))
        for defense_name in _DEFENSES:
            evaluations = payload["evaluations"][defense_name]
            cell = {
                "l2": mean_l2,
                "accuracy": nan_safe_mean(e["accuracy"] for e in evaluations),
                "aiou": nan_safe_mean(e["aiou"] for e in evaluations),
                "points_removed": float(np.mean([e["points_removed"]
                                                 for e in evaluations])),
            }
            cells[f"{method}/{defense_name}"] = cell
            rows.append({
                "attack": method,
                "defense": defense_name,
                "l2": cell["l2"],
                "accuracy_pct": cell["accuracy"] * 100.0,
                "aiou_pct": cell["aiou"] * 100.0,
                "points_removed": cell["points_removed"],
            })

    return TableResult(
        name="table8",
        title="Table VIII: SRS / SOR defenses vs. performance degradation on ResGCN",
        rows=rows,
        columns=["attack", "defense", "l2", "accuracy_pct", "aiou_pct",
                 "points_removed"],
        metadata={
            "num_scenes": num_scenes,
            "cells": cells,
            "clean_accuracy": float(np.mean(deps["table8/clean"]["accuracy"])),
        },
    )


def run_table8(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table VIII on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table8(context.config), context)


__all__ = ["run_table8", "plan_table8"]
