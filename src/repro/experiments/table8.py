"""Table VIII — anomaly-detection defenses (SRS, SOR) against both attacks.

ResGCN is attacked on S3DIS under the performance-degradation objective with
the norm-bounded and norm-unbounded methods; the resulting adversarial clouds
are then filtered by Simple Random Sampling and Statistical Outlier Removal
before re-segmentation (Finding 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import run_attack
from ..defenses import SimpleRandomSampling, StatisticalOutlierRemoval, evaluate_with_defense
from .context import ExperimentContext
from .reporting import TableResult

_METHODS = ("bounded", "unbounded")


def run_table8(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate Table VIII on the synthetic S3DIS data."""
    context = context or ExperimentContext()
    model = context.model("resgcn", "s3dis")
    scenes = context.s3dis_attack_pool()

    # The paper removes ~1 % of the points with SRS and uses k=2 for SOR.
    srs_removed = max(1, int(round(0.01 * context.config.s3dis_points)) * 5)
    defenses = {
        "none": None,
        "srs": SimpleRandomSampling(num_removed=srs_removed, seed=context.config.seed),
        "sor": StatisticalOutlierRemoval(k=2, std_multiplier=1.0),
    }

    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    for method in _METHODS:
        config = context.attack_config(objective="degradation", method=method,
                                       field="color")
        results = [run_attack(model, scene, config) for scene in scenes]
        for defense_name, defense in defenses.items():
            evaluations = [
                evaluate_with_defense(model, defense,
                                      result.adversarial_coords,
                                      result.adversarial_colors,
                                      result.labels)
                for result in results
            ]
            cell = {
                "l2": float(np.mean([r.l2 for r in results])),
                "accuracy": float(np.mean([e.accuracy for e in evaluations])),
                "aiou": float(np.mean([e.aiou for e in evaluations])),
                "points_removed": float(np.mean([e.points_removed for e in evaluations])),
            }
            cells[f"{method}/{defense_name}"] = cell
            rows.append({
                "attack": method,
                "defense": defense_name,
                "l2": cell["l2"],
                "accuracy_pct": cell["accuracy"] * 100.0,
                "aiou_pct": cell["aiou"] * 100.0,
                "points_removed": cell["points_removed"],
            })

    # Clean reference (defended clean clouds) so "restored to original" can be judged.
    clean_reference = []
    from ..datasets.splits import prepare_scene
    for scene in scenes:
        prepared = prepare_scene(scene, model.spec)
        clean_reference.append(evaluate_with_defense(
            model, None, prepared.coords, prepared.colors, prepared.labels).accuracy)

    return TableResult(
        name="table8",
        title="Table VIII: SRS / SOR defenses vs. performance degradation on ResGCN",
        rows=rows,
        columns=["attack", "defense", "l2", "accuracy_pct", "aiou_pct",
                 "points_removed"],
        metadata={
            "num_scenes": len(scenes),
            "cells": cells,
            "clean_accuracy": float(np.mean(clean_reference)),
        },
    )


__all__ = ["run_table8"]
