"""Defense-matrix extension table: attack × defense × adaptivity.

Not a table from the paper — it generalises Table VIII's 2-defense static
grid into the full matrix the defense registry and the adaptive attack mode
open up.  One model (PointNet++, S3DIS pool) is attacked with the
norm-bounded colour attack under two threat models:

* **static** — the attacker never learns a defense exists.  One attack cell
  produces the adversarial clouds; every registered defense then scores the
  same clouds (the Table VIII protocol, extended to the full registry).
* **adaptive** — one attack cell *per defense*: the attacker knows the
  deployed defense and folds ``eot_samples`` stochastic defense draws into
  every optimisation step (expectation over transformation; see
  ``repro.core.eot``).  Each cell is scored against the defense it adapted
  to.

A ``clean_eval`` cell provides the defended *clean* accuracy reference per
defense.  The plan decomposes exactly like Tables II–IX — per-cell tasks on
the shared dataset → model prerequisites — so ``python -m repro.pipeline
--experiment table_defenses --jobs N --resume`` fans the cells out and
resumes from the content-addressed store (the adaptive knobs ride in the
cell params and the ``eot_samples`` config field, both of which participate
in the store hashes).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult
from .table8 import nan_safe_mean

MODEL = "pointnet2"

#: The attack every cell runs: a norm-bounded colour attack driven for its
#: full step budget (a zero accuracy target disables early stopping, so the
#: static and adaptive attackers spend identical optimisation effort).
ATTACK = {"objective": "degradation", "method": "bounded", "field": "color",
          "target_accuracy": 0.0}


def defense_specs(config: ExperimentConfig) -> List[Dict[str, Any]]:
    """The swept defense grid: every registry defense plus one chain.

    Scales are chosen for the PointNet++ input space (coords in ``[0, 3]``,
    colours in ``[0, 1]``): strong enough to blunt a static attack, mild
    enough to keep the defended clean accuracy usable.
    """
    srs_removed = max(1, int(round(0.05 * config.s3dis_points)))
    return [
        {"name": "srs", "kwargs": {"num_removed": srs_removed,
                                   "seed": config.seed}},
        {"name": "sor", "kwargs": {"k": 2, "std_multiplier": 1.0}},
        {"name": "voxel", "kwargs": {"cell_size": 0.08}},
        {"name": "rotation", "kwargs": {"max_angle_deg": 15.0}},
        {"name": "jitter", "kwargs": {"sigma": 0.03, "color_sigma": 0.06}},
        {"name": "voxel+jitter", "kwargs": {}},
    ]


def eot_samples(config: ExperimentConfig) -> int:
    """The adaptive cells' EOT sample count K (``--eot-samples`` overrides)."""
    if config.eot_samples is not None:
        return config.eot_samples
    return 8 if config.attack_profile == "paper" else 4


def _label(spec: Mapping[str, Any]) -> str:
    return spec.get("label", spec["name"])


def _adaptive_cell_id(label: str) -> str:
    return f"table_defenses/adaptive/{label}"


def plan_table_defenses(config: ExperimentConfig) -> TaskGraph:
    """Task graph: dataset → model → static + per-defense adaptive cells."""
    graph = TaskGraph(result="table_defenses:result")
    pool = pool_spec("s3dis", count=config.attack_scenes)
    model_id = add_model_task(graph, MODEL, "s3dis")
    specs = defense_specs(config)
    samples = eot_samples(config)

    graph.add(Task("table_defenses/static", "defense_cell", {
        "model": MODEL, "dataset": "s3dis", "pool": pool,
        "attack": dict(ATTACK),
        "defenses": specs,
    }, deps=(model_id,)))
    cell_ids = ["table_defenses/static"]

    for spec in specs:
        label = _label(spec)
        graph.add(Task(_adaptive_cell_id(label), "defense_cell", {
            "model": MODEL, "dataset": "s3dis", "pool": pool,
            "attack": {**ATTACK, "adaptive": True, "defense": spec["name"],
                       "defense_kwargs": dict(spec.get("kwargs") or {}),
                       "eot_samples": samples},
            "defenses": [spec],
        }, deps=(model_id,)))
        cell_ids.append(_adaptive_cell_id(label))

    graph.add(Task("table_defenses/clean", "clean_eval", {
        "model": MODEL, "dataset": "s3dis", "pool": pool, "defenses": specs,
    }, deps=(model_id,)))
    graph.add(Task("table_defenses:result", "table_defenses:assemble",
                   {"eot_samples": samples},
                   deps=tuple(cell_ids) + ("table_defenses/clean",),
                   cacheable=False))
    return graph


def _cell_row(payload: Mapping[str, Any], label: str) -> Dict[str, float]:
    evaluations = payload["evaluations"][label]
    raw = payload["evaluations"]["none"]
    return {
        "l2": float(np.mean(payload["l2"])),
        "raw_accuracy": nan_safe_mean(e["accuracy"] for e in raw),
        "accuracy": nan_safe_mean(e["accuracy"] for e in evaluations),
        "aiou": nan_safe_mean(e["aiou"] for e in evaluations),
        "points_removed": float(np.mean([e["points_removed"]
                                         for e in evaluations])),
    }


@register_executor("table_defenses:assemble")
def _assemble_table_defenses(context: ExperimentContext,
                             params: Mapping[str, Any],
                             deps: Mapping[str, Any]) -> TableResult:
    clean = deps["table_defenses/clean"]
    specs = defense_specs(context.config)
    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    num_scenes = deps["table_defenses/static"]["num_scenes"]
    for spec in specs:
        label = _label(spec)
        defended_clean = nan_safe_mean(clean["defended_accuracy"][label])
        for adaptivity in ("static", "adaptive"):
            payload = (deps["table_defenses/static"] if adaptivity == "static"
                       else deps[_adaptive_cell_id(label)])
            cell = _cell_row(payload, label)
            cells[f"{adaptivity}/{label}"] = cell
            rows.append({
                "defense": label,
                "attack": adaptivity,
                "l2": cell["l2"],
                "raw_acc_pct": cell["raw_accuracy"] * 100.0,
                "defended_acc_pct": cell["accuracy"] * 100.0,
                "defended_aiou_pct": cell["aiou"] * 100.0,
                "clean_defended_acc_pct": defended_clean * 100.0,
                "points_removed": cell["points_removed"],
            })

    return TableResult(
        name="table_defenses",
        title=("Defense matrix: static vs adaptive (EOT) attacks across the "
               f"defense registry ({MODEL}, bounded colour attack)"),
        rows=rows,
        columns=["defense", "attack", "l2", "raw_acc_pct", "defended_acc_pct",
                 "defended_aiou_pct", "clean_defended_acc_pct",
                 "points_removed"],
        metadata={
            "num_scenes": num_scenes,
            "model": MODEL,
            "eot_samples": params.get("eot_samples"),
            "clean_accuracy": float(np.mean(clean["accuracy"])),
            "cells": cells,
        },
    )


def run_table_defenses(context: Optional[ExperimentContext] = None) -> TableResult:
    """Regenerate the defense-matrix table on the synthetic data."""
    context = context or ExperimentContext()
    return execute_plan(plan_table_defenses(context.config), context)


__all__ = ["run_table_defenses", "plan_table_defenses", "defense_specs",
           "eot_samples", "MODEL", "ATTACK"]
