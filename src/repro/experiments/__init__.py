"""``repro.experiments`` — runners that regenerate every table and figure.

Every ``run_table*`` entry point is a thin wrapper that builds a
:mod:`repro.pipeline` task graph (``plan_table*``) and executes it —
serially in-process by default, or through the worker pool / result store
of the ``ExperimentContext``'s attached pipeline session.
"""

from .ablations import (
    run_all_ablations,
    run_epsilon_ablation,
    run_lambda2_ablation,
    run_neighbourhood_ablation,
    run_steps_ablation,
)
from .context import ExperimentConfig, ExperimentContext
from .extensions import run_alternating_ablation, run_pct_extension
from .figures import run_figures
from .overhead import run_overhead
from .reporting import TableResult, format_table
from .plans import available_experiments, plan_experiment
from .table2 import plan_table2, run_table2
from .table3 import plan_table3, run_table3
from .table45 import (HIDING_SOURCE_CLASSES, HIDING_TARGET_CLASS, plan_table4,
                      plan_table5, run_table4, run_table5)
from .table67 import plan_table6, plan_table7, run_table6, run_table7
from .table8 import plan_table8, run_table8
from .table9 import plan_table9, run_table9
from .table_blackbox import plan_table_blackbox, run_table_blackbox
from .table_defenses import plan_table_defenses, run_table_defenses

__all__ = [
    "available_experiments",
    "plan_experiment",
    "plan_table2",
    "plan_table3",
    "plan_table4",
    "plan_table5",
    "plan_table6",
    "plan_table7",
    "plan_table8",
    "plan_table9",
    "plan_table_blackbox",
    "plan_table_defenses",
    "ExperimentConfig",
    "ExperimentContext",
    "TableResult",
    "format_table",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table_blackbox",
    "run_table_defenses",
    "run_figures",
    "run_overhead",
    "run_lambda2_ablation",
    "run_epsilon_ablation",
    "run_steps_ablation",
    "run_neighbourhood_ablation",
    "run_all_ablations",
    "run_pct_extension",
    "run_alternating_ablation",
    "HIDING_SOURCE_CLASSES",
    "HIDING_TARGET_CLASS",
]
