"""``repro.experiments`` — runners that regenerate every table and figure."""

from .ablations import (
    run_all_ablations,
    run_epsilon_ablation,
    run_lambda2_ablation,
    run_neighbourhood_ablation,
    run_steps_ablation,
)
from .context import ExperimentConfig, ExperimentContext
from .extensions import run_alternating_ablation, run_pct_extension
from .figures import run_figures
from .overhead import run_overhead
from .reporting import TableResult, format_table
from .table2 import run_table2
from .table3 import run_table3
from .table45 import HIDING_SOURCE_CLASSES, HIDING_TARGET_CLASS, run_table4, run_table5
from .table67 import run_table6, run_table7
from .table8 import run_table8
from .table9 import run_table9

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "TableResult",
    "format_table",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_figures",
    "run_overhead",
    "run_lambda2_ablation",
    "run_epsilon_ablation",
    "run_steps_ablation",
    "run_neighbourhood_ablation",
    "run_all_ablations",
    "run_pct_extension",
    "run_alternating_ablation",
    "HIDING_SOURCE_CLASSES",
    "HIDING_TARGET_CLASS",
]
