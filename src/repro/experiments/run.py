"""Command-line entry point for regenerating individual experiments.

Examples
--------
Run Table III at the default (CPU-friendly) scale::

    python -m repro.experiments.run --experiment table3

Run every experiment and write the formatted tables to a directory::

    python -m repro.experiments.run --experiment all --output results/

Use ``--paper-scale`` to switch to the paper's cloud sizes and step counts
(very slow on CPU), ``--list`` to enumerate the experiment names, and
``--jobs N`` to fan the per-cell attack tasks out onto N worker processes
through :mod:`repro.pipeline` (``--jobs 1``, the default, preserves the
classic serial in-process behaviour).
"""

from __future__ import annotations

import argparse
import os
from contextlib import nullcontext
from typing import Callable, Dict, Optional

from .ablations import (
    run_epsilon_ablation,
    run_lambda2_ablation,
    run_neighbourhood_ablation,
    run_steps_ablation,
)
from ..pipeline.cli import positive_int
from .context import ExperimentConfig, ExperimentContext
from .extensions import run_alternating_ablation, run_pct_extension
from .figures import run_figures
from .overhead import run_overhead
from .reporting import TableResult
from .table2 import run_table2
from .table3 import run_table3
from .table45 import run_table4, run_table5
from .table67 import run_table6, run_table7
from .table8 import run_table8
from .table9 import run_table9
from .table_blackbox import run_table_blackbox
from .table_defenses import run_table_defenses

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], TableResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "table_blackbox": run_table_blackbox,
    "table_defenses": run_table_defenses,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "table9": run_table9,
    "figures": run_figures,
    "overhead": run_overhead,
    "ablation_lambda2": run_lambda2_ablation,
    "ablation_epsilon": run_epsilon_ablation,
    "ablation_steps": run_steps_ablation,
    "ablation_neighbourhood": run_neighbourhood_ablation,
    "extension_pct": run_pct_extension,
    "extension_alternating": run_alternating_ablation,
}


def experiment_summaries() -> Dict[str, str]:
    """One-line summary per registered experiment.

    Sourced from the first docstring line of each runner, so the registry
    itself is the single source of truth — ``docs/EXPERIMENTS.md`` is
    generated from this (and ``tests/test_docs.py`` fails when they
    diverge, the doc-sync gate this repo once needed: table_blackbox and
    table_defenses had silently gone missing from the README table).
    """
    summaries: Dict[str, str] = {}
    for name, runner in EXPERIMENTS.items():
        lines = (runner.__doc__ or "").strip().splitlines()
        summaries[name] = lines[0].rstrip() if lines else "(undocumented)"
    return summaries


def experiments_markdown_table() -> str:
    """The experiment registry as a GitHub-flavoured markdown table.

    Printed by ``--list --markdown`` and embedded verbatim in
    ``docs/EXPERIMENTS.md``; regenerate with::

        PYTHONPATH=src python -m repro.experiments.run --list --markdown
    """
    from .plans import _NEVER_CACHE
    summaries = experiment_summaries()
    lines = ["| experiment | cached | summary |",
             "|---|---|---|"]
    for name in sorted(EXPERIMENTS):
        cached = "no" if name in _NEVER_CACHE else "yes"
        lines.append(f"| `{name}` | {cached} | {summaries[name]} |")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--experiment", default="table3",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiment to regenerate")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full-scale parameters (slow)")
    parser.add_argument("--output", default=None,
                        help="directory to write formatted tables into")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true",
                        help="list the experiment names and exit")
    parser.add_argument("--markdown", action="store_true",
                        help="with --list: print the registry as the "
                             "markdown table embedded in docs/EXPERIMENTS.md")
    parser.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                        help="worker processes for the attack cells; with N > 1 "
                             "completed cells are also cached in the result "
                             "store under <cache_dir>/results and reused on "
                             "re-runs (1 = classic serial behaviour)")
    parser.add_argument("--fresh", action="store_true",
                        help="with --jobs N: recompute every cell, ignoring "
                             "previously cached results")
    parser.add_argument("--no-store", action="store_true",
                        help="with --jobs N: do not read or write the result "
                             "store at all")
    parser.add_argument("--batch-scenes", type=positive_int, default=1,
                        metavar="B",
                        help="scenes driven per attack loop inside each cell "
                             "(results are identical at any value)")
    parser.add_argument("--attack-mode", default="whitebox",
                        choices=("whitebox", "nes", "spsa", "boundary"),
                        help="threat model for every attack cell (black-box "
                             "engines never see gradients)")
    parser.add_argument("--query-budget", type=positive_int, default=None,
                        metavar="Q",
                        help="per-scene query budget of the black-box modes")
    parser.add_argument("--samples-per-step", type=positive_int, default=None,
                        metavar="S",
                        help="finite-difference directions per NES/SPSA step")
    parser.add_argument("--eot-samples", type=positive_int, default=None,
                        metavar="K",
                        help="defense samples per optimisation step of the "
                             "adaptive (defense-aware) attack cells "
                             "(default: the experiment's own value)")
    parser.add_argument("--retries", default=None, metavar="R",
                        help="retries per task after a transient failure "
                             "(worker crash, broken pool, timeout, injected "
                             "fault); runs through the pipeline scheduler "
                             "even at --jobs 1")
    parser.add_argument("--task-timeout", default=None, metavar="SECONDS",
                        help="wall-clock deadline per task attempt "
                             "(enforced with --jobs > 1); runs through the "
                             "pipeline scheduler")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="deterministic fault injection "
                             "(PATTERN=MODE[:TIMES[:SECONDS]] clauses, see "
                             "`python -m repro.pipeline --help`); runs "
                             "through the pipeline scheduler")
    parser.add_argument("--backend", default=None,
                        choices=("auto", "serial", "local", "remote"),
                        help="executor backend of the pipeline scheduler; "
                             "'remote' dispatches cells to repro.serve "
                             "worker daemons (forces scheduler delegation)")
    parser.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                        help="comma-separated repro.serve daemon addresses "
                             "of --backend remote")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="shared HTTP result store URL (see `python -m "
                             "repro.pipeline store-serve`)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace of the run "
                             "(inspect with `python -m repro.telemetry "
                             "summarize PATH`)")
    return parser


def run_experiment(name: str, context: ExperimentContext,
                   output_dir: Optional[str] = None) -> TableResult:
    """Run one experiment, print it, and optionally save the formatted table."""
    result = EXPERIMENTS[name](context)
    text = result.formatted()
    print(text)
    print()
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, f"{result.name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return result


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        if args.markdown:
            print(experiments_markdown_table())
        else:
            for name in sorted(EXPERIMENTS):
                print(name)
        return 0
    resilient = (args.retries is not None or args.task_timeout is not None
                 or args.fault_plan is not None)
    distributed = (args.backend is not None or args.workers is not None
                   or args.store_url is not None)
    if args.jobs > 1 or resilient or distributed:
        # Delegate to the pipeline CLI: one merged task graph, one worker
        # pool, shared dataset/model tasks deduplicated across experiments.
        # Resilience knobs force the delegation even at --jobs 1: retries,
        # deadlines and fault plans live in the scheduler, not in the
        # classic inline path.
        from ..pipeline import cli as pipeline_cli
        forwarded = ["--experiment", args.experiment,
                     "--jobs", str(args.jobs), "--seed", str(args.seed),
                     "--batch-scenes", str(args.batch_scenes),
                     "--attack-mode", args.attack_mode]
        if args.query_budget is not None:
            forwarded += ["--query-budget", str(args.query_budget)]
        if args.samples_per_step is not None:
            forwarded += ["--samples-per-step", str(args.samples_per_step)]
        if args.eot_samples is not None:
            forwarded += ["--eot-samples", str(args.eot_samples)]
        if args.paper_scale:
            forwarded += ["--scale", "paper"]
        if args.output:
            forwarded += ["--output", args.output]
        if args.fresh:
            forwarded.append("--fresh")
        if args.no_store:
            forwarded.append("--no-store")
        if args.retries is not None:
            forwarded += ["--retries", str(args.retries)]
        if args.task_timeout is not None:
            forwarded += ["--task-timeout", str(args.task_timeout)]
        if args.fault_plan is not None:
            forwarded += ["--fault-plan", args.fault_plan]
        if args.backend is not None:
            forwarded += ["--backend", args.backend]
        if args.workers is not None:
            forwarded += ["--workers", args.workers]
        if args.store_url is not None:
            forwarded += ["--store-url", args.store_url]
        if args.trace:
            forwarded += ["--trace", args.trace]
        return pipeline_cli.main(forwarded)
    knobs = dict(seed=args.seed, batch_scenes=args.batch_scenes,
                 attack_mode=args.attack_mode, query_budget=args.query_budget,
                 samples_per_step=args.samples_per_step,
                 eot_samples=args.eot_samples)
    config = (ExperimentConfig.paper_scale(**knobs) if args.paper_scale
              else ExperimentConfig.default(**knobs))
    context = ExperimentContext(config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tracer_cm = nullcontext()
    if args.trace:
        from ..pipeline.scheduler import config_salt
        from ..telemetry import build_manifest, trace_to
        tracer_cm = trace_to(args.trace, manifest=build_manifest(
            salt=config_salt(config),
            extra={"experiments": names, "jobs": 1}))
    with tracer_cm:
        for name in names:
            run_experiment(name, context, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
