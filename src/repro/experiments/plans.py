"""Experiment plan registry: every experiment name as a task graph.

Tables II–IX decompose into per-cell attack tasks (see the ``plan_*``
builders in the table modules).  The remaining experiments — figures,
overhead and the ablations/extensions — run as single monolithic pipeline
tasks: they still flow through the scheduler and (where it makes sense) the
result store, and can be decomposed further in later iterations.

Importing this module registers every domain executor, which is why
:mod:`repro.pipeline.worker` imports it lazily before executing tasks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from . import cells  # noqa: F401  (registers the shared cell executors)
from .context import ExperimentConfig, ExperimentContext
from .table2 import plan_table2
from .table3 import plan_table3
from .table45 import plan_table4, plan_table5
from .table67 import plan_table6, plan_table7
from .table8 import plan_table8
from .table9 import plan_table9
from .table_blackbox import plan_table_blackbox
from .table_defenses import plan_table_defenses

#: Experiments with a fully decomposed per-cell task graph.
PLAN_BUILDERS: Dict[str, Callable[[ExperimentConfig], TaskGraph]] = {
    "table2": plan_table2,
    "table3": plan_table3,
    "table4": plan_table4,
    "table5": plan_table5,
    "table6": plan_table6,
    "table7": plan_table7,
    "table8": plan_table8,
    "table9": plan_table9,
    "table_blackbox": plan_table_blackbox,
    "table_defenses": plan_table_defenses,
}

#: Monolithic experiments whose outputs should never be served from the
#: store: they measure wall-clock time or write figure files as a side
#: effect, so a cache hit would skip the work the caller actually wants.
_NEVER_CACHE = {"overhead", "figures"}


@register_executor("experiment")
def _execute_experiment(context: ExperimentContext, params: Mapping[str, Any],
                        deps: Mapping[str, Any]) -> Any:
    """Run one legacy (not yet decomposed) experiment wholesale."""
    from .run import EXPERIMENTS
    return EXPERIMENTS[params["name"]](context)


def _monolithic_plan(name: str, config: ExperimentConfig) -> TaskGraph:
    graph = TaskGraph(result=f"{name}:result")
    graph.add(Task(f"{name}:result", "experiment", {"name": name},
                   cacheable=name not in _NEVER_CACHE))
    return graph


def available_experiments() -> List[str]:
    """Every experiment name the pipeline can plan."""
    from .run import EXPERIMENTS
    return sorted(set(EXPERIMENTS) | set(PLAN_BUILDERS))


def plan_experiment(name: str, config: ExperimentConfig) -> TaskGraph:
    """Task graph for one experiment (decomposed where available)."""
    if name in PLAN_BUILDERS:
        return PLAN_BUILDERS[name](config)
    if name in available_experiments():
        return _monolithic_plan(name, config)
    raise KeyError(f"unknown experiment {name!r}; "
                   f"choose from {available_experiments()}")


__all__ = [
    "PLAN_BUILDERS",
    "available_experiments",
    "plan_experiment",
]
