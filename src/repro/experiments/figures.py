"""Figures 1, 3, 4 and 5 — visualisations of adversarial examples.

* Figure 1 / Figure 4 — object-hiding attack on an office scene: the board
  (and other furniture) is recoloured so the model predicts "wall".
* Figure 3 — performance degradation on three indoor room types
  (conference room, hallway, lobby) with PointNet++ as the victim.
* Figure 5 — performance degradation on an outdoor scene with RandLA-Net.

Each figure is written as a 4-panel PPM image (original scene, original
segmentation, perturbed scene, perturbed segmentation) plus ASCII previews.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..core import run_attack
from ..datasets.s3dis import CLASS_INDEX, generate_room_scene
from ..visualization import attack_figure
from .context import ExperimentContext
from .reporting import TableResult


def run_figures(context: Optional[ExperimentContext] = None,
                output_dir: Optional[str] = None) -> TableResult:
    """Regenerate all figure panels; returns a summary table of accuracy drops."""
    context = context or ExperimentContext()
    output_dir = output_dir or os.path.join(context.config.cache_dir, "figures")
    rng = np.random.default_rng(context.config.seed + 77)

    rows: List[Dict[str, object]] = []
    artifacts: Dict[str, object] = {}

    # Figure 3: degradation on three indoor room types, PointNet++ victim.
    pointnet = context.model("pointnet2", "s3dis")
    degradation_cfg = context.attack_config(objective="degradation",
                                            method="unbounded", field="color")
    for room_type in ("conference", "hallway", "lobby"):
        scene = generate_room_scene(num_points=context.config.s3dis_points,
                                    room_type=room_type, rng=rng,
                                    name=f"Area_5/{room_type}_figure")
        result = run_attack(pointnet, scene, degradation_cfg)
        path = os.path.join(output_dir, f"figure3_{room_type}.ppm")
        figure = attack_figure(result, path=path)
        artifacts[f"figure3/{room_type}"] = figure
        rows.append({
            "figure": "figure3",
            "scene": room_type,
            "model": "pointnet2",
            "attack": "degradation/unbounded/color",
            "accuracy_before_pct": figure.accuracy_before * 100.0,
            "accuracy_after_pct": figure.accuracy_after * 100.0,
            "image": figure.image_path,
        })

    # Figures 1 and 4: object hiding (board -> wall) on an office scene.
    office = generate_room_scene(num_points=context.config.s3dis_points,
                                 room_type="office", rng=rng,
                                 name="Area_5/office_33_figure")
    hiding_cfg = context.attack_config(objective="hiding", method="unbounded",
                                       field="color",
                                       source_class=CLASS_INDEX["board"],
                                       target_class=CLASS_INDEX["wall"])
    hiding_result = run_attack(pointnet, office, hiding_cfg)
    path = os.path.join(output_dir, "figure4_object_hiding.ppm")
    figure = attack_figure(hiding_result, path=path)
    artifacts["figure4/office"] = figure
    rows.append({
        "figure": "figure1+4",
        "scene": "office_33",
        "model": "pointnet2",
        "attack": "hiding(board->wall)/unbounded/color",
        "accuracy_before_pct": figure.accuracy_before * 100.0,
        "accuracy_after_pct": figure.accuracy_after * 100.0,
        "image": figure.image_path,
        "psr_pct": (hiding_result.outcome.psr or 0.0) * 100.0,
    })

    # Figure 5: outdoor degradation with RandLA-Net.
    randlanet = context.model("randlanet", "semantic3d")
    outdoor = context.semantic3d_attack_pool(count=1)[0]
    outdoor_cfg = context.attack_config(objective="degradation",
                                        method="unbounded", field="color",
                                        target_accuracy=1.0 / 8.0)
    outdoor_result = run_attack(randlanet, outdoor, outdoor_cfg)
    path = os.path.join(output_dir, "figure5_outdoor.ppm")
    figure = attack_figure(outdoor_result, path=path)
    artifacts["figure5/outdoor"] = figure
    rows.append({
        "figure": "figure5",
        "scene": outdoor.name,
        "model": "randlanet",
        "attack": "degradation/unbounded/color",
        "accuracy_before_pct": figure.accuracy_before * 100.0,
        "accuracy_after_pct": figure.accuracy_after * 100.0,
        "image": figure.image_path,
    })

    return TableResult(
        name="figures",
        title="Figures 1/3/4/5: accuracy before vs. after the visualised attacks",
        rows=rows,
        columns=["figure", "scene", "model", "attack",
                 "accuracy_before_pct", "accuracy_after_pct", "image"],
        metadata={"artifacts": artifacts, "output_dir": output_dir},
    )


__all__ = ["run_figures"]
