"""Tables IV and V — the object-hiding attack on S3DIS.

Six source classes (window, door, table, chair, bookcase, board) are
perturbed so the model predicts them as ``wall``.  Table IV uses the
norm-unbounded attack, Table V the norm-bounded one.  Reported per
(model, source class): mean L2, PSR, out-of-band vs. overall accuracy and
aIoU (Findings 4 and 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import run_attack_batch
from ..datasets.s3dis import CLASS_INDEX, S3DIS_CLASS_NAMES
from ..metrics.summary import mean_field
from .context import ExperimentContext
from .reporting import TableResult

# The paper's source classes (S3DIS label ids 5, 6, 7, 8, 10, 11) and target.
HIDING_SOURCE_CLASSES = ("window", "door", "table", "chair", "bookcase", "board")
HIDING_TARGET_CLASS = "wall"
MODELS = ("pointnet2", "resgcn", "randlanet")


def _run_hiding_table(context: ExperimentContext, method: str,
                      name: str, title: str) -> TableResult:
    scenes = context.s3dis_attack_pool(count=context.config.hiding_scenes,
                                       room_type="office")
    target_index = CLASS_INDEX[HIDING_TARGET_CLASS]

    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    for model_name in MODELS:
        model = context.model(model_name, "s3dis")
        for source_name in HIDING_SOURCE_CLASSES:
            source_index = CLASS_INDEX[source_name]
            config = context.attack_config(
                objective="hiding", method=method, field="color",
                source_class=source_index, target_class=target_index,
            )
            results = run_attack_batch(model, scenes, config)
            if not results:
                continue
            outcomes = [r.outcome for r in results]
            cell = {
                "l2": float(np.mean([r.l2 for r in results])),
                "psr": mean_field(outcomes, "psr"),
                "oob_accuracy": mean_field(outcomes, "oob_accuracy"),
                "accuracy": mean_field(outcomes, "accuracy"),
                "oob_aiou": mean_field(outcomes, "oob_aiou"),
                "aiou": mean_field(outcomes, "aiou"),
            }
            cells[f"{model_name}/{source_name}"] = cell
            rows.append({
                "model": model_name,
                "source_class": source_name,
                "source_label": source_index,
                "l2": cell["l2"],
                "psr_pct": cell["psr"] * 100.0,
                "oob_acc_pct": cell["oob_accuracy"] * 100.0,
                "acc_pct": cell["accuracy"] * 100.0,
                "oob_aiou_pct": cell["oob_aiou"] * 100.0,
                "aiou_pct": cell["aiou"] * 100.0,
            })

    return TableResult(
        name=name,
        title=title,
        rows=rows,
        columns=["model", "source_class", "source_label", "l2", "psr_pct",
                 "oob_acc_pct", "acc_pct", "oob_aiou_pct", "aiou_pct"],
        metadata={
            "target_class": HIDING_TARGET_CLASS,
            "target_label": target_index,
            "num_scenes": len(scenes),
            "cells": cells,
            "class_names": list(S3DIS_CLASS_NAMES),
        },
    )


def run_table4(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table IV: object hiding with the norm-unbounded attack."""
    context = context or ExperimentContext()
    return _run_hiding_table(
        context, method="unbounded", name="table4",
        title="Table IV: object hiding (norm-unbounded), source classes -> wall",
    )


def run_table5(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table V: object hiding with the norm-bounded attack."""
    context = context or ExperimentContext()
    return _run_hiding_table(
        context, method="bounded", name="table5",
        title="Table V: object hiding (norm-bounded), source classes -> wall",
    )


__all__ = ["run_table4", "run_table5", "HIDING_SOURCE_CLASSES", "HIDING_TARGET_CLASS"]
