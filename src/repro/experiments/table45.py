"""Tables IV and V — the object-hiding attack on S3DIS.

Six source classes (window, door, table, chair, bookcase, board) are
perturbed so the model predicts them as ``wall``.  Table IV uses the
norm-unbounded attack, Table V the norm-bounded one.  Reported per
(model, source class): mean L2, PSR, out-of-band vs. overall accuracy and
aIoU (Findings 4 and 5).

Each (model × source class) combination is one pipeline attack cell; cells
whose scenes contain no source-class points yield empty record lists and
are silently dropped at assembly, mirroring the paper's cloud selection.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..datasets.s3dis import CLASS_INDEX, S3DIS_CLASS_NAMES
from ..metrics.summary import mean_field
from ..pipeline.graph import Task, TaskGraph
from ..pipeline.worker import register_executor
from .cells import add_model_task, execute_plan, pool_spec
from .context import ExperimentConfig, ExperimentContext
from .reporting import TableResult

# The paper's source classes (S3DIS label ids 5, 6, 7, 8, 10, 11) and target.
HIDING_SOURCE_CLASSES = ("window", "door", "table", "chair", "bookcase", "board")
HIDING_TARGET_CLASS = "wall"
MODELS = ("pointnet2", "resgcn", "randlanet")


def _cell_id(name: str, model_name: str, source_name: str) -> str:
    return f"{name}/{model_name}/{source_name}"


def _plan_hiding_table(config: ExperimentConfig, method: str,
                       name: str) -> TaskGraph:
    """Task graph: dataset → models → 18 hiding cells → table assembly."""
    graph = TaskGraph(result=f"{name}:result")
    pool = pool_spec("s3dis", count=config.hiding_scenes)
    target_index = CLASS_INDEX[HIDING_TARGET_CLASS]
    cell_ids: List[str] = []
    for model_name in MODELS:
        model_id = add_model_task(graph, model_name, "s3dis")
        for source_name in HIDING_SOURCE_CLASSES:
            graph.add(Task(_cell_id(name, model_name, source_name),
                           "attack_cell", {
                "model": model_name, "dataset": "s3dis", "pool": pool,
                "attack": {"objective": "hiding", "method": method,
                           "field": "color",
                           "source_class": CLASS_INDEX[source_name],
                           "target_class": target_index},
                "mode": "batch",
            }, deps=(model_id,)))
            cell_ids.append(_cell_id(name, model_name, source_name))
    graph.add(Task(f"{name}:result", "table45:assemble",
                   {"name": name, "method": method},
                   deps=tuple(cell_ids), cacheable=False))
    return graph


_TITLES = {
    "table4": "Table IV: object hiding (norm-unbounded), source classes -> wall",
    "table5": "Table V: object hiding (norm-bounded), source classes -> wall",
}


@register_executor("table45:assemble")
def _assemble_hiding_table(context: ExperimentContext,
                           params: Mapping[str, Any],
                           deps: Mapping[str, Any]) -> TableResult:
    name = params["name"]
    target_index = CLASS_INDEX[HIDING_TARGET_CLASS]
    rows: List[Dict[str, object]] = []
    cells: Dict[str, Dict[str, float]] = {}
    num_scenes = 0
    for model_name in MODELS:
        for source_name in HIDING_SOURCE_CLASSES:
            payload = deps[_cell_id(name, model_name, source_name)]
            num_scenes = payload["num_scenes"]
            records = payload["records"]
            if not records:
                continue
            outcomes = [r["outcome"] for r in records]
            source_index = CLASS_INDEX[source_name]
            cell = {
                "l2": float(np.mean([r["l2"] for r in records])),
                "psr": mean_field(outcomes, "psr"),
                "oob_accuracy": mean_field(outcomes, "oob_accuracy"),
                "accuracy": mean_field(outcomes, "accuracy"),
                "oob_aiou": mean_field(outcomes, "oob_aiou"),
                "aiou": mean_field(outcomes, "aiou"),
            }
            cells[f"{model_name}/{source_name}"] = cell
            rows.append({
                "model": model_name,
                "source_class": source_name,
                "source_label": source_index,
                "l2": cell["l2"],
                "psr_pct": cell["psr"] * 100.0,
                "oob_acc_pct": cell["oob_accuracy"] * 100.0,
                "acc_pct": cell["accuracy"] * 100.0,
                "oob_aiou_pct": cell["oob_aiou"] * 100.0,
                "aiou_pct": cell["aiou"] * 100.0,
            })

    return TableResult(
        name=name,
        title=_TITLES[name],
        rows=rows,
        columns=["model", "source_class", "source_label", "l2", "psr_pct",
                 "oob_acc_pct", "acc_pct", "oob_aiou_pct", "aiou_pct"],
        metadata={
            "target_class": HIDING_TARGET_CLASS,
            "target_label": target_index,
            "num_scenes": num_scenes,
            "cells": cells,
            "class_names": list(S3DIS_CLASS_NAMES),
        },
    )


def plan_table4(config: ExperimentConfig) -> TaskGraph:
    return _plan_hiding_table(config, method="unbounded", name="table4")


def plan_table5(config: ExperimentConfig) -> TaskGraph:
    return _plan_hiding_table(config, method="bounded", name="table5")


def run_table4(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table IV: object hiding with the norm-unbounded attack."""
    context = context or ExperimentContext()
    return execute_plan(plan_table4(context.config), context)


def run_table5(context: Optional[ExperimentContext] = None) -> TableResult:
    """Table V: object hiding with the norm-bounded attack."""
    context = context or ExperimentContext()
    return execute_plan(plan_table5(context.config), context)


__all__ = ["run_table4", "run_table5", "plan_table4", "plan_table5",
           "HIDING_SOURCE_CLASSES", "HIDING_TARGET_CLASS"]
