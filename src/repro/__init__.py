"""repro — reproduction of "On Adversarial Robustness of Point Cloud Semantic Segmentation".

The package is organised as follows:

* :mod:`repro.nn` — NumPy autodiff / neural-network substrate;
* :mod:`repro.accel` — compute-policy layer: dtype policy (float32
  fast-math vs float64 exactness) and memoised neighbourhood graphs;
* :mod:`repro.geometry` — kNN, sampling and normalisation utilities;
* :mod:`repro.datasets` — synthetic S3DIS-like and Semantic3D-like datasets;
* :mod:`repro.models` — PointNet++, ResGCN and RandLA-Net style PCSS models;
* :mod:`repro.core` — the paper's contribution: the adversarial attack framework;
* :mod:`repro.defenses` — SRS and SOR anomaly-detection defenses;
* :mod:`repro.metrics` — segmentation and attack metrics;
* :mod:`repro.experiments` — runners that regenerate every table and figure;
* :mod:`repro.visualization` — scene / segmentation rendering.
"""

from .version import __version__

__all__ = ["__version__"]
