"""repro — reproduction of "On Adversarial Robustness of Point Cloud Semantic Segmentation".

The package is organised as follows (layer map and data flow in
``docs/ARCHITECTURE.md``):

* :mod:`repro.nn` — NumPy autodiff / neural-network substrate;
* :mod:`repro.accel` — compute-policy layer: dtype policy (float32
  fast-math vs float64 exactness) and memoised neighbourhood graphs;
* :mod:`repro.geometry` — kNN, sampling and normalisation utilities;
* :mod:`repro.datasets` — synthetic S3DIS-like and Semantic3D-like datasets;
* :mod:`repro.models` — PointNet++, ResGCN and RandLA-Net style PCSS models;
* :mod:`repro.core` — the paper's contribution: the adversarial attack
  framework (white-box engines plus NES/SPSA/boundary black-box modes);
* :mod:`repro.defenses` — the defense registry: SRS, SOR, voxel,
  rotation, jitter and chains;
* :mod:`repro.metrics` — segmentation and attack metrics;
* :mod:`repro.experiments` — runners that regenerate every table and figure;
* :mod:`repro.pipeline` — parallel orchestration: task graphs, the
  content-addressed result store, retries and fault injection;
* :mod:`repro.telemetry` — structured tracing, metrics and profiling;
* :mod:`repro.serve` — the attack-as-a-service daemon: warm worker
  pool, socket JSON protocol, salt-keyed job deduplication;
* :mod:`repro.visualization` — scene / segmentation rendering.
"""

from .version import __version__

__all__ = ["__version__"]
