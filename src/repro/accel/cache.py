"""Memoised neighbourhood graphs with a bounded-staleness refresh policy.

Point-cloud models rebuild their kNN aggregation graphs from the input
coordinates on every forward pass.  During an attack that is almost always
wasted work:

* colour-field attacks never move the coordinates, so every step queries
  the kd-tree with byte-identical inputs;
* coordinate-field attacks move points by a fraction of the inter-point
  spacing per step, so the graph from a few steps ago is still an excellent
  aggregation structure.

:class:`NeighborhoodCache` exploits both.  Every lookup is keyed by a *slot*
(a stable per-call-site label) plus a content fingerprint of the input
arrays:

* identical content → the cached graph is returned (always exact);
* changed content but the slot was refreshed fewer than ``refresh_interval``
  steps ago → the stale graph is returned (fast mode, ``R > 1``);
* otherwise the graph is recomputed and the slot refreshed.

With ``refresh_interval = 1`` the cache is a pure memoiser: it never returns
a graph computed from different bytes than the current input, which keeps
exactness mode bit-for-bit identical to the seed implementation.  kd-trees
themselves are cached by content fingerprint so one tree per scene serves
queries at every ``k`` and dilation.

The *active* cache is process-global: attack engines install a fresh cache
(:func:`use_cache`) around their optimisation loop and call
:meth:`NeighborhoodCache.advance` once per step; models, the smoothness
penalty and the SOR defense simply pull graphs from :func:`neighborhoods`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..geometry.knn import build_tree, dilated_knn_indices, knn_indices


def fingerprint(array: np.ndarray) -> bytes:
    """Cheap content digest of an array (shape + dtype + raw bytes).

    The contiguous array is hashed through the buffer protocol — no
    intermediate byte-copy of the data.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str((array.shape, array.dtype.str)).encode())
    digest.update(memoryview(array).cast("B"))
    return digest.digest()


def _combined_fingerprint(arrays: Sequence[np.ndarray]) -> bytes:
    if len(arrays) == 1:
        return fingerprint(arrays[0])
    return b"".join(fingerprint(a) for a in arrays)


class _SlotEntry:
    __slots__ = ("fp", "step", "value")

    def __init__(self, fp: bytes, step: int, value) -> None:
        self.fp = fp
        self.step = step
        self.value = value


def _value_nbytes(value) -> int:
    """Approximate retained size of a cached value (arrays and containers)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(item) for item in value)
    return 64


class NeighborhoodCache:
    """Memoises per-scene neighbourhood structures with bounded staleness.

    Parameters
    ----------
    refresh_interval:
        ``R`` — how many attack steps a slot's graph may be reused after the
        underlying coordinates changed.  ``1`` recomputes on every change
        (exact); the fast profile uses ``5``.
    tree_capacity / content_capacity / content_byte_budget:
        Bounds for the kd-tree cache and for slot-less (content-keyed)
        lookups such as the SOR defense and the memoised reporting
        forwards: the content LRU is limited both by entry count and by
        the approximate bytes it retains, so paper-scale logits arrays
        cannot pin hundreds of megabytes per worker process.
    """

    def __init__(self, refresh_interval: int = 1, tree_capacity: int = 64,
                 content_capacity: int = 128, slot_capacity: int = 512,
                 content_byte_budget: int = 64 * 1024 * 1024) -> None:
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        self.refresh_interval = int(refresh_interval)
        self.step = 0
        self._slots: "OrderedDict[tuple, _SlotEntry]" = OrderedDict()
        self._content: "OrderedDict[tuple, object]" = OrderedDict()
        self._trees: "OrderedDict[bytes, object]" = OrderedDict()
        self._tree_capacity = tree_capacity
        self._content_capacity = content_capacity
        self._slot_capacity = slot_capacity
        self._content_byte_budget = content_byte_budget
        self._content_bytes = 0
        self.exact_hits = 0
        self.stale_hits = 0
        self.misses = 0
        self.tree_hits = 0

    # -------------------------------------------------------------- #
    def advance(self) -> None:
        """Advance the staleness clock by one attack step."""
        self.step += 1

    def clear(self) -> None:
        self._slots.clear()
        self._content.clear()
        self._content_bytes = 0
        self._trees.clear()

    def stats(self) -> Dict[str, int]:
        return {"exact_hits": self.exact_hits, "stale_hits": self.stale_hits,
                "misses": self.misses, "tree_hits": self.tree_hits,
                "step": self.step}

    def reset_stats(self) -> None:
        """Zero the hit/miss counters and the staleness clock.

        The cached values themselves survive: resetting is about reporting
        scope (per attack run / per task), not about invalidation.
        ``attack_compute`` installs a fresh cache per run, so its counters
        are per-run by construction; the *process-default* cache serves
        evaluation and defense forwards for the life of the process, and
        telemetry snapshots-and-diffs it per task (see
        :mod:`repro.telemetry.stats`) rather than resetting it here, so
        concurrent consumers never lose counts.  The ``step`` clock is left
        alone: it keys slot staleness, and rewinding it under live slots
        would let arbitrarily old graphs pass the freshness test.
        """
        self.exact_hits = 0
        self.stale_hits = 0
        self.misses = 0
        self.tree_hits = 0

    # -------------------------------------------------------------- #
    def tree(self, points: np.ndarray, fp: Optional[bytes] = None):
        """A kd-tree for ``points``, shared across every k / dilation query."""
        fp = fp if fp is not None else fingerprint(points)
        tree = self._trees.get(fp)
        if tree is not None:
            self._trees.move_to_end(fp)
            self.tree_hits += 1
            return tree
        tree = build_tree(points)
        self._trees[fp] = tree
        if len(self._trees) > self._tree_capacity:
            self._trees.popitem(last=False)
        return tree

    def memo(self, op_key: tuple, arrays: Sequence[np.ndarray],
             compute: Callable[[], object],
             slot: Optional[tuple] = None,
             digests: Optional[Sequence[bytes]] = None):
        """Generic staleness-aware memoisation of ``compute()``.

        ``op_key`` describes the operation (name plus every parameter that
        affects the result — ``k``, dilation, ...).  ``slot`` is a hashable
        call-site label stable across attack steps; when given, the stale
        graph from fewer than ``refresh_interval`` steps ago may be reused.
        With ``slot=None`` the lookup is purely content-keyed: exact hits
        only, stored in a bounded LRU.  Callers that already fingerprinted
        the arrays (to share the digest with :meth:`tree`) pass ``digests``
        to skip rehashing.
        """
        fp = (b"".join(digests) if digests is not None
              else _combined_fingerprint(arrays))
        if slot is None:
            content_key = (*op_key, fp)
            cached = self._content.get(content_key)
            if cached is not None:
                self._content.move_to_end(content_key)
                self.exact_hits += 1
                return cached
            value = compute()
            self._content[content_key] = value
            self._content_bytes += _value_nbytes(value)
            while self._content and (
                    len(self._content) > self._content_capacity
                    or self._content_bytes > self._content_byte_budget):
                _, evicted = self._content.popitem(last=False)
                self._content_bytes -= _value_nbytes(evicted)
            self.misses += 1
            return value

        slot_key = (*op_key, *slot)
        entry = self._slots.get(slot_key)
        if entry is not None:
            self._slots.move_to_end(slot_key)
            if entry.fp == fp:
                self.exact_hits += 1
                return entry.value
            if (self.refresh_interval > 1
                    and self.step - entry.step < self.refresh_interval):
                self.stale_hits += 1
                return entry.value
        value = compute()
        self._slots[slot_key] = _SlotEntry(fp, self.step, value)
        self._slots.move_to_end(slot_key)
        if len(self._slots) > self._slot_capacity:
            self._slots.popitem(last=False)
        self.misses += 1
        return value

    # -------------------------------------------------------------- #
    # kNN-specific conveniences
    # -------------------------------------------------------------- #
    def knn(self, points: np.ndarray, k: int,
            queries: Optional[np.ndarray] = None, include_self: bool = True,
            slot: Optional[tuple] = None,
            points_fp: Optional[bytes] = None) -> np.ndarray:
        """Cached :func:`repro.geometry.knn.knn_indices`.

        ``points_fp`` lets a caller that already fingerprinted ``points``
        (e.g. for a sibling lookup on the same cloud) skip rehashing.
        """
        if points_fp is None:
            points_fp = fingerprint(points)
        if queries is None:
            arrays, digests = (points,), (points_fp,)
        else:
            arrays, digests = (points, queries), (points_fp, fingerprint(queries))

        def compute() -> np.ndarray:
            return knn_indices(points, k, queries=queries,
                               include_self=include_self,
                               tree=self.tree(points, fp=points_fp))

        return self.memo(("knn", k, include_self), arrays, compute, slot=slot,
                         digests=digests)

    def knn_batch(self, points: np.ndarray, k: int, include_self: bool = True,
                  slot: Optional[tuple] = None) -> np.ndarray:
        """Cached self-neighbourhoods for a batch ``(B, N, D)`` of clouds."""
        rows: List[np.ndarray] = [
            self.knn(points[b], k, include_self=include_self,
                     slot=None if slot is None else (*slot, b))
            for b in range(points.shape[0])
        ]
        return np.stack(rows)

    def dilated(self, points: np.ndarray, k: int, dilation: int = 1,
                slot: Optional[tuple] = None) -> np.ndarray:
        """Cached :func:`repro.geometry.knn.dilated_knn_indices`."""
        points_fp = fingerprint(points)

        def compute() -> np.ndarray:
            return dilated_knn_indices(points, k, dilation=dilation,
                                       tree=self.tree(points, fp=points_fp))

        return self.memo(("dilated", k, dilation), (points,), compute,
                         slot=slot, digests=(points_fp,))


# ------------------------------------------------------------------ #
# Active cache (process-global)
# ------------------------------------------------------------------ #
_default_cache = NeighborhoodCache(refresh_interval=1)
_active_cache: List[NeighborhoodCache] = [_default_cache]


def neighborhoods() -> NeighborhoodCache:
    """The cache consumers (models, smoothness, SOR) should query."""
    return _active_cache[-1]


@contextmanager
def use_cache(cache: NeighborhoodCache) -> Iterator[NeighborhoodCache]:
    """Install ``cache`` as the active neighbourhood cache for the duration."""
    _active_cache.append(cache)
    try:
        yield cache
    finally:
        _active_cache.pop()


__all__ = [
    "NeighborhoodCache",
    "fingerprint",
    "neighborhoods",
    "use_cache",
]
