"""Compute-thread pinning for oversubscription-free parallel execution.

Two thread pools compete for cores underneath this framework: the BLAS
library behind NumPy's matmuls and SciPy's kd-tree query fan-out.  Both
default to "all cores", which is right for a single process but disastrous
when the pipeline runs ``--jobs N`` worker processes (N × cores threads) or
on small CI runners (2 vCPUs), where the resulting oversubscription makes
smoke-benchmark timings noisy enough to defeat drift gating.

:func:`pin_compute_threads` pins both knobs for the current process:

* kd-tree queries take effect immediately (SciPy's ``workers=`` is a
  per-call argument read from :mod:`repro.geometry.knn`);
* BLAS pools are controlled via the standard environment variables, which
  most BLAS builds read at load time.  Importing this module already pulls
  NumPy in (via the :mod:`repro.accel` package), so for a fresh process the
  variables must be exported *before* Python starts — the benchmark entry
  points write them inline before their first ``import numpy``, and CI
  exports them at the workflow level (the authoritative setting for runner
  machines).  Calling this from a running process is still worthwhile: it
  covers libraries loaded later and every child process spawned from here
  (e.g. the pipeline's spawn-mode workers).
"""

from __future__ import annotations

import os

#: Environment variables observed by the common BLAS/OpenMP builds.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_env(threads: int = 1, overwrite: bool = False) -> None:
    """Export the BLAS/OpenMP thread-count variables for this process tree.

    With ``overwrite=False`` an operator's explicit setting wins; the
    function only fills in unset variables.
    """
    value = str(max(int(threads), 1))
    for name in _BLAS_ENV_VARS:
        if overwrite or name not in os.environ:
            os.environ[name] = value


def pin_compute_threads(threads: int = 1) -> None:
    """Pin kd-tree query workers and BLAS pools to ``threads`` cores.

    The kd-tree setting respects an explicit ``REPRO_KNN_WORKERS`` override,
    mirroring the historical behaviour of the pipeline workers.
    """
    pin_blas_env(threads)
    if "REPRO_KNN_WORKERS" not in os.environ:
        from ..geometry.knn import set_query_workers

        set_query_workers(max(int(threads), 1))


__all__ = ["pin_blas_env", "pin_compute_threads"]
