"""Compute policy: the dtype / staleness knobs of the acceleration layer.

A :class:`ComputePolicy` bundles the two global trade-offs the framework
exposes:

* ``dtype`` — the floating dtype every :class:`repro.nn.Tensor` operation
  computes in.  ``float32`` roughly halves memory traffic on the attack hot
  path; ``float64`` (the default outside attacks) reproduces the seed
  implementation bit for bit.
* ``neighbor_refresh`` — the staleness interval ``R`` of the
  :class:`repro.accel.cache.NeighborhoodCache`: neighbourhood graphs are
  recomputed every ``R`` attack steps instead of every forward pass.
  ``R = 1`` recomputes whenever the coordinates actually changed
  (exactness mode); larger ``R`` trades a slightly stale aggregation graph
  for skipping most kd-tree work.

The active policy is process-global (the pipeline parallelises across
processes, not threads) and is consulted by ``repro.nn.tensor`` every time a
tensor is created, so the lookup must stay cheap: :func:`compute_dtype` reads
a module-level variable.

``REPRO_ACCEL=fast|exact`` overrides the per-attack-config policy globally,
which lets the benchmark harness switch modes without touching any code.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

_DTYPES = {"float32": np.float32, "float64": np.float64}


@dataclass(frozen=True)
class ComputePolicy:
    """Immutable bundle of compute trade-off knobs.

    ``smoothness_neighbors`` selects the Eq. 9 neighbour source of the
    norm-unbounded attack ("current" = the seed's per-step recompute from
    the perturbed cloud, "clean" = fixed to the clean cloud); it rides on
    the policy so the ``REPRO_ACCEL=exact`` override restores the *complete*
    seed behaviour, not just the arithmetic.
    """

    dtype: np.dtype = np.dtype(np.float64)
    neighbor_refresh: int = 1
    smoothness_neighbors: str = "current"
    # Compiled tensor engine knobs (repro.nn.compile): whether engines may
    # capture step graphs and replay compiled plans, and which backend
    # executes them.  ``graph_capture`` is bitwise-neutral (replay is
    # bit-for-bit identical to eager); ``tensor_backend="torch"`` is not
    # (allclose only), so the backend participates in result-store salting
    # while capture does not.
    tensor_backend: str = "numpy"
    graph_capture: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        if self.neighbor_refresh < 1:
            raise ValueError("neighbor_refresh must be >= 1")
        if self.smoothness_neighbors not in ("clean", "current"):
            raise ValueError("smoothness_neighbors must be 'clean' or 'current'")
        if self.tensor_backend not in ("numpy", "torch"):
            raise ValueError("tensor_backend must be 'numpy' or 'torch'")

    @property
    def is_exact(self) -> bool:
        """Whether the per-operation arithmetic matches the seed bit-for-bit.

        This gates the fast-math rewrites (fused BatchNorm eval, split-weight
        EdgeConv).  Full seed-identical attack trajectories additionally need
        ``smoothness_neighbors == "current"`` in the unbounded engine.
        """
        return self.dtype == np.dtype(np.float64) and self.neighbor_refresh == 1

    # -------------------------------------------------------------- #
    @classmethod
    def fast(cls) -> "ComputePolicy":
        """float32 fast-math, 5-step refresh, clean-cloud smoothness graph."""
        return cls(dtype=np.float32, neighbor_refresh=5,
                   smoothness_neighbors="clean")

    @classmethod
    def exact(cls) -> "ComputePolicy":
        """The seed implementation's behaviour, bit for bit."""
        return cls(dtype=np.float64, neighbor_refresh=1,
                   smoothness_neighbors="current")

    @classmethod
    def from_attack_config(cls, config) -> "ComputePolicy":
        """Derive the policy for an attack from its :class:`AttackConfig`.

        The ``REPRO_ACCEL`` environment variable ("fast" / "exact")
        overrides the configuration, so a whole benchmark or pipeline run
        can be forced into either mode externally.  The compiled-engine
        knobs are threaded independently of that override (``REPRO_ACCEL``
        selects arithmetic, not the executor): ``REPRO_BACKEND`` picks the
        plan backend and ``REPRO_CAPTURE=0`` disables graph capture.
        """
        backend, capture = cls._engine_knobs(config)
        override = os.environ.get("REPRO_ACCEL", "").strip().lower()
        if override == "fast":
            return cls(dtype=np.float32, neighbor_refresh=5,
                       smoothness_neighbors="clean",
                       tensor_backend=backend, graph_capture=capture)
        if override == "exact":
            return cls(dtype=np.float64, neighbor_refresh=1,
                       smoothness_neighbors="current",
                       tensor_backend=backend, graph_capture=capture)
        if override:
            # A typo must not silently fall back to fast-math in a workflow
            # that believes it is verifying exactness.
            raise ValueError(
                f"REPRO_ACCEL={override!r} is not recognised; use 'fast', "
                f"'exact' or unset")
        return cls(dtype=_DTYPES[config.compute_dtype],
                   neighbor_refresh=config.neighbor_refresh,
                   smoothness_neighbors=config.smoothness_neighbors,
                   tensor_backend=backend, graph_capture=capture)

    @staticmethod
    def _engine_knobs(config) -> Tuple[str, bool]:
        """Resolve (tensor_backend, graph_capture) from config + environment."""
        backend = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if not backend:
            backend = getattr(config, "tensor_backend", "numpy")
        capture_env = os.environ.get("REPRO_CAPTURE", "").strip().lower()
        if capture_env:
            capture = capture_env not in ("0", "false", "no", "off")
        else:
            capture = bool(getattr(config, "graph_capture", True))
        return backend, capture


# ------------------------------------------------------------------ #
# Active policy (process-global; consulted on every Tensor creation)
# ------------------------------------------------------------------ #
_policy_stack: List[ComputePolicy] = [ComputePolicy.exact()]
_current_dtype: np.dtype = _policy_stack[-1].dtype


def current_policy() -> ComputePolicy:
    """The policy currently in effect."""
    return _policy_stack[-1]


def compute_dtype() -> np.dtype:
    """The floating dtype new tensors are created with (hot-path lookup)."""
    return _current_dtype


@contextmanager
def use_policy(policy: ComputePolicy) -> Iterator[ComputePolicy]:
    """Make ``policy`` the active compute policy for the duration."""
    global _current_dtype
    _policy_stack.append(policy)
    _current_dtype = policy.dtype
    try:
        yield policy
    finally:
        _policy_stack.pop()
        _current_dtype = _policy_stack[-1].dtype


# ------------------------------------------------------------------ #
# Model dtype casting and parameter freezing
# ------------------------------------------------------------------ #
@contextmanager
def cast_model(model, dtype) -> Iterator:
    """Temporarily view a model's parameters and buffers in ``dtype``.

    The original float64 arrays are retained and restored afterwards, so a
    float32 attack never degrades the stored weights (no double-rounding on
    repeated casts).  A no-op when the model already matches ``dtype``.
    """
    dtype = np.dtype(dtype)
    saved_params: List[Tuple[object, np.ndarray]] = []
    saved_buffers: List[Tuple[object, str, np.ndarray]] = []
    for _, param in model.named_parameters():
        if param.data.dtype != dtype:
            saved_params.append((param, param.data))
            param.data = param.data.astype(dtype)
    for module in model.modules():
        for name in getattr(module, "_buffers", ()):
            buffer = getattr(module, name)
            if isinstance(buffer, np.ndarray) and buffer.dtype != dtype:
                saved_buffers.append((module, name, buffer))
                setattr(module, name, buffer.astype(dtype))
    try:
        yield model
    finally:
        for param, original in saved_params:
            param.data = original
        for module, name, original in saved_buffers:
            setattr(module, name, original)


@contextmanager
def freeze_parameters(model) -> Iterator:
    """Temporarily set ``requires_grad = False`` on every model parameter.

    Attacks differentiate with respect to the *input*, never the weights;
    freezing lets the autograd engine skip every weight-gradient product in
    the backward pass (roughly half the work of each Linear layer).
    """
    frozen = []
    for _, param in model.named_parameters():
        if param.requires_grad:
            frozen.append(param)
            param.requires_grad = False
    try:
        yield model
    finally:
        for param in frozen:
            param.requires_grad = True


__all__ = [
    "ComputePolicy",
    "current_policy",
    "compute_dtype",
    "use_policy",
    "cast_model",
    "freeze_parameters",
]
