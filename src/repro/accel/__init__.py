"""``repro.accel`` — the compute-policy layer of the attack hot path.

This package concentrates the performance knobs that every other subsystem
(:mod:`repro.nn`, :mod:`repro.geometry`, :mod:`repro.models`,
:mod:`repro.core`) consults:

* :class:`ComputePolicy` — float32 fast-math vs float64 exactness, and the
  neighbourhood refresh interval ``R``;
* :class:`NeighborhoodCache` — memoised, staleness-tolerant kNN graphs and
  shared kd-trees;
* :func:`attack_compute` — the single context manager attack engines wrap
  around their optimisation loop: it activates the dtype policy, casts the
  victim model, freezes its parameters (input gradients only) and installs
  a fresh neighbourhood cache.

Exactness contract: under ``ComputePolicy.exact()`` every code path in this
layer is bit-for-bit identical to the seed implementation — verified by the
golden regression test in ``tests/test_accel.py``.
"""

import os
import time
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator

from ..telemetry import get_tracer, record_cache_stats
from .cache import NeighborhoodCache, fingerprint, neighborhoods, use_cache
from .policy import (
    ComputePolicy,
    cast_model,
    compute_dtype,
    current_policy,
    freeze_parameters,
    use_policy,
)
from .threads import pin_blas_env, pin_compute_threads


@contextmanager
def attack_compute(model, config, *,
                   neighbor_refresh: int | None = None) -> Iterator[NeighborhoodCache]:
    """Everything an attack engine needs around its optimisation loop.

    Derives the :class:`ComputePolicy` from ``config`` (honouring the
    ``REPRO_ACCEL`` override), activates it, casts ``model`` to the policy
    dtype, freezes its parameters, and installs a fresh
    :class:`NeighborhoodCache` with the policy's refresh interval.  Yields
    the cache; the engine calls :meth:`NeighborhoodCache.advance` once per
    optimisation step.

    ``neighbor_refresh`` overrides the cache's staleness interval without
    touching the dtype policy.  The black-box engines pin it to 1: slot
    staleness is keyed by batch position, which depends on how scenes are
    packed into a forward, and their probe clouds change every step anyway —
    a content-exact cache keeps serial and ``batch_scenes`` runs bit-for-bit
    identical while still memoising the unchanged-coordinate lookups.
    """
    global _last_attack_stats, _last_plan_stats
    # Imported lazily: repro.nn consults this package on every Tensor
    # creation, so the module-level dependency must point nn -> accel only.
    from ..nn.compile import PlanCache, use_plan_cache

    policy = ComputePolicy.from_attack_config(config)
    cache = NeighborhoodCache(refresh_interval=neighbor_refresh
                              if neighbor_refresh is not None
                              else policy.neighbor_refresh)
    cache.reset_stats()
    plans = (PlanCache(backend=policy.tensor_backend)
             if policy.graph_capture else None)
    tracer = get_tracer()
    start = time.perf_counter()
    try:
        with use_policy(policy), cast_model(model, policy.dtype), \
                freeze_parameters(model), use_cache(cache), \
                use_plan_cache(plans), _maybe_profile(tracer):
            yield cache
    finally:
        stats = cache.stats()
        _last_attack_stats = stats
        _last_plan_stats = dict(plans.stats) if plans is not None else {}
        record_cache_stats(stats)
        if tracer.enabled:
            engine = getattr(config, "engine_name", None)
            tracer.emit("attack_run", engine=engine,
                        dur_s=time.perf_counter() - start,
                        steps=stats["step"], dtype=str(policy.dtype),
                        refresh=cache.refresh_interval, cache=stats,
                        backend=policy.tensor_backend,
                        plans=_last_plan_stats or None)
            tracer.count("attacks", 1)
            tracer.count("attack_steps", stats["step"])
            for key in ("exact_hits", "stale_hits", "misses", "tree_hits"):
                tracer.count(f"cache.{key}", stats[key])
            if plans is not None:
                tracer.count("plan.replays", plans.stats["replays"])
                tracer.count("plan.captures", plans.stats["captures"])


def _maybe_profile(tracer):
    """The per-op autograd profiler, when ``REPRO_PROFILE_OPS`` opts in."""
    if os.environ.get("REPRO_PROFILE_OPS", "").strip() in ("", "0"):
        return nullcontext()
    from ..telemetry.profiler import profile_ops
    return profile_ops(tracer=tracer, label="attack_compute")


_last_attack_stats: Dict[str, int] = {}
_last_plan_stats: Dict[str, int] = {}


def last_attack_cache_stats() -> Dict[str, int]:
    """Stats of the most recent attack's neighbourhood cache (diagnostics)."""
    return dict(_last_attack_stats)


def last_attack_plan_stats() -> Dict[str, int]:
    """Plan-cache stats of the most recent attack run (diagnostics).

    Empty when the run had graph capture disabled.  Keys: ``programs``,
    ``captures``, ``replays``, ``fallbacks``.
    """
    return dict(_last_plan_stats)


__all__ = [
    "ComputePolicy",
    "NeighborhoodCache",
    "attack_compute",
    "cast_model",
    "compute_dtype",
    "current_policy",
    "fingerprint",
    "freeze_parameters",
    "last_attack_cache_stats",
    "last_attack_plan_stats",
    "neighborhoods",
    "pin_blas_env",
    "pin_compute_threads",
    "use_cache",
    "use_policy",
]
