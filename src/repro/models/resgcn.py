"""ResGCN (DeepGCN)-style segmentation model.

Reproduces the structure of ResGCN-28 (Li et al., ICCV 2019) at a
CPU-friendly scale: a stack of residual EdgeConv blocks on a (dilated) k-NN
graph built from the point coordinates, followed by a fusion block and a
per-point classification head.

The paper's pre-trained ResGCN-28 uses ``k = 16`` dilated neighbourhoods,
64 filters and 28 blocks; the defaults here are smaller but every knob is
exposed (``num_blocks=28`` reconstructs the full depth).

The k-NN aggregation over *coordinates* is exactly what makes coordinate
perturbations poorly controllable (Finding 1): moving one point changes the
neighbourhoods — and therefore the aggregated features — of many other
points.  The neighbourhood indices are recomputed from the (possibly
perturbed) input coordinates at every forward pass, reproducing that effect.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..accel import current_policy, neighborhoods
from ..geometry.transforms import RESGCN_SPEC
from ..nn import (
    Dropout,
    Linear,
    SharedMLP,
    Tensor,
    concatenate,
    gather_points,
)
from .base import SegmentationModel, check_inputs


class EdgeConvBlock:
    """A residual EdgeConv block: ``x + max_j MLP([x_i, x_j - x_i])``."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        self.channels = channels
        self.mlp = SharedMLP([2 * channels, channels], rng=rng)

    def __call__(self, features: Tensor, neighbor_idx: np.ndarray) -> Tensor:
        neighbours = gather_points(features, neighbor_idx)           # (B, N, K, C)
        center = features.expand_dims(2)                             # (B, N, 1, C)
        diff = neighbours - center
        if current_policy().is_exact:
            center_tiled = center.broadcast_to(neighbours.shape)     # view, no copy
            edge = concatenate([center_tiled, diff], axis=-1)
            aggregated = self.mlp(edge).max(axis=2)
        else:
            # Fast-math: split the first Linear's weight over the two halves
            # of the edge vector — ``[x_i, x_j - x_i] @ W`` becomes
            # ``x_i @ W_top + (x_j - x_i) @ W_bot`` — so the (B, N, K, 2C)
            # edge tensor is never materialised and the centre half of the
            # product runs on 1/K of the data.
            linear, *rest = self.mlp.body.children_list
            pre = (center @ linear.weight[: self.channels]
                   + diff @ linear.weight[self.channels:])
            if linear.bias is not None:
                pre = pre + linear.bias
            out = pre
            for module in rest:
                out = module(out)
            aggregated = out.max(axis=2)
        return features + aggregated


class ResGCNSeg(SegmentationModel):
    """Residual EdgeConv GCN for point-cloud semantic segmentation.

    Parameters
    ----------
    num_classes:
        Number of semantic classes.
    num_blocks:
        Number of residual EdgeConv blocks (28 in the paper's model).
    hidden:
        Number of filters per block (64 in the paper's model).
    k:
        Neighbourhood size of the k-NN graph (16 in the paper's model).
    max_dilation:
        Blocks use dilation ``1, 2, ..., max_dilation`` cyclically
        (DeepGCN's dilated k-NN).
    dropout:
        Drop-out rate before the classifier (0.3 in the paper's model).
    """

    model_name = "resgcn"

    def __init__(self, num_classes: int, num_blocks: int = 4, hidden: int = 32,
                 k: int = 16, max_dilation: int = 2, dropout: float = 0.3,
                 seed: int = 0) -> None:
        super().__init__(num_classes, RESGCN_SPEC)
        rng = np.random.default_rng(seed)
        self.num_blocks = num_blocks
        self.hidden = hidden
        self.k = k
        self.max_dilation = max(1, max_dilation)

        self.input_mlp = SharedMLP([6, hidden], rng=rng)
        self.blocks: List[EdgeConvBlock] = [
            EdgeConvBlock(hidden, rng) for _ in range(num_blocks)
        ]
        self._block_modules = [block.mlp for block in self.blocks]
        # Fusion of all block outputs (dense connectivity in DeepGCN style).
        self.fusion = SharedMLP([hidden * (num_blocks + 1), hidden], rng=rng)
        self.head_dropout = Dropout(dropout, seed=seed)
        self.classifier = Linear(hidden, num_classes, rng=rng)

    # ------------------------------------------------------------------ #
    def _neighbor_indices(self, coords: np.ndarray) -> List[np.ndarray]:
        """Per-dilation k-NN index tables ``(B, N, k)`` built from coordinates.

        All dilations are served by the active neighbourhood cache, which
        also shares one kd-tree per cloud across every dilation's query.
        """
        batch = coords.shape[0]
        cache = neighborhoods()
        tables = []
        for dilation in range(1, self.max_dilation + 1):
            idx = np.stack([
                cache.dilated(coords[b], self.k, dilation=dilation,
                              slot=("resgcn", id(self), b))
                for b in range(batch)
            ])
            tables.append(idx)
        return tables

    def forward(self, coords: Tensor, colors: Tensor) -> Tensor:
        check_inputs(coords, colors)
        neighbor_tables = self._neighbor_indices(coords.data)

        features = self.input_mlp(concatenate([colors, coords], axis=-1))
        skips = [features]
        for i, block in enumerate(self.blocks):
            table = neighbor_tables[i % len(neighbor_tables)]
            features = block(features, table)
            skips.append(features)

        fused = self.fusion(concatenate(skips, axis=-1))
        fused = self.head_dropout(fused)
        return self.classifier(fused)


__all__ = ["ResGCNSeg", "EdgeConvBlock"]
