"""PointNet++-style segmentation model.

This reproduces the structure of PointNet++ semantic segmentation (Qi et al.,
NeurIPS 2017) at a configurable, CPU-friendly scale:

* **set-abstraction (SA)** layers: farthest-point sampling of centroids,
  k-NN grouping, a shared MLP on ``[relative xyz, neighbour features]`` and a
  max-pool over each group;
* **feature-propagation (FP)** layers: inverse-distance interpolation of
  coarse features back onto finer point sets, concatenated with skip features
  and refined by a shared MLP;
* a per-point classification head.

The pre-processing convention matches the paper's description of the
pre-trained model: coordinates normalised to ``[0, 3]`` and colours to
``[0, 1]`` (see :data:`repro.geometry.transforms.POINTNET2_SPEC`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..accel import fingerprint as cache_fingerprint
from ..accel import neighborhoods
from ..geometry.sampling import farthest_point_sampling
from ..geometry.transforms import POINTNET2_SPEC
from ..nn import (
    Dropout,
    Linear,
    SharedMLP,
    Tensor,
    concatenate,
    gather_points,
    knn_interpolate,
)
from .base import SegmentationModel, check_inputs


class SetAbstraction:
    """One SA layer: sample centroids, group neighbours, pool features."""

    def __init__(self, ratio: float, k: int, mlp_channels: Sequence[int],
                 rng: np.random.Generator) -> None:
        self.ratio = ratio
        self.k = k
        self.mlp = SharedMLP(mlp_channels, rng=rng)

    def __call__(self, coords: Tensor, features: Tensor):
        """Return (centroid coords tensor, centroid coords array, pooled features)."""
        batch, num_points, _ = coords.shape
        num_centroids = max(1, int(round(num_points * self.ratio)))
        # Centroid selection and grouping both come from the active
        # neighbourhood cache: exact hits whenever the coordinates did not
        # change (colour attacks), stale reuse inside the refresh window in
        # fast mode.
        cache = neighborhoods()
        # One content fingerprint per batch item feeds the FPS memo, the
        # grouping query and the shared kd-tree lookup alike.
        cloud_fps = [cache_fingerprint(coords.data[b]) for b in range(batch)]
        # FPS start-point seeds: batch-position-dependent during training
        # (the historical behaviour the trained checkpoints depend on), but
        # position-independent in evaluation so a scene's centroids — and
        # therefore its logits — do not change with where it sits in a
        # batch.  This is what makes batched attack execution bit-identical
        # per scene to serial runs.
        fps_seeds = [b if self.mlp.training else 0 for b in range(batch)]
        fps_idx = np.stack([
            cache.memo(("fps", num_centroids, fps_seeds[b]), (coords.data[b],),
                       lambda b=b: farthest_point_sampling(
                           coords.data[b], num_centroids, seed=fps_seeds[b]),
                       slot=("pointnet2.sa", id(self), b),
                       digests=(cloud_fps[b],))
            for b in range(batch)
        ])                                                       # (B, M)
        group_idx = np.stack([
            cache.knn(coords.data[b], min(self.k, num_points),
                      queries=coords.data[b][fps_idx[b]],
                      slot=("pointnet2.sa.group", id(self), b),
                      points_fp=cloud_fps[b])
            for b in range(batch)
        ])                                                       # (B, M, K)

        centroids = gather_points(coords, fps_idx)               # (B, M, 3)
        neighbour_coords = gather_points(coords, group_idx)      # (B, M, K, 3)
        relative = neighbour_coords - centroids.expand_dims(2)
        neighbour_feats = gather_points(features, group_idx)     # (B, M, K, C)
        grouped = concatenate([relative, neighbour_feats], axis=-1)
        pooled = self.mlp(grouped).max(axis=2)                   # (B, M, C')
        return centroids, pooled


class FeaturePropagation:
    """One FP layer: interpolate coarse features up and fuse with skip features."""

    def __init__(self, mlp_channels: Sequence[int], k: int,
                 rng: np.random.Generator) -> None:
        self.k = k
        self.mlp = SharedMLP(mlp_channels, rng=rng)

    def __call__(self, target_coords: np.ndarray, source_coords: np.ndarray,
                 target_features: Optional[Tensor], source_features: Tensor) -> Tensor:
        interpolated = knn_interpolate(source_features, source_coords,
                                       target_coords, k=self.k,
                                       slot=("pointnet2.fp", id(self)))
        if target_features is not None:
            interpolated = concatenate([interpolated, target_features], axis=-1)
        return self.mlp(interpolated)


class PointNet2Seg(SegmentationModel):
    """PointNet++ semantic-segmentation network (single-scale grouping).

    Parameters
    ----------
    num_classes:
        Number of semantic classes.
    hidden:
        Base channel width; the deeper SA layer uses ``2 * hidden``.
    num_neighbors:
        ``k`` for the k-NN grouping in each SA layer.
    sa_ratios:
        Down-sampling ratio of each SA layer (two layers by default, matching
        a scaled-down version of the paper's 4-layer pre-trained model).
    dropout:
        Drop-out rate in the classification head.
    """

    model_name = "pointnet2"

    def __init__(self, num_classes: int, hidden: int = 32, num_neighbors: int = 16,
                 sa_ratios: Sequence[float] = (0.25, 0.25), dropout: float = 0.3,
                 seed: int = 0) -> None:
        super().__init__(num_classes, POINTNET2_SPEC)
        rng = np.random.default_rng(seed)
        self.hidden = hidden
        self.num_neighbors = num_neighbors
        in_channels = 6  # colours + raw coordinates as per-point features

        channels = [hidden, 2 * hidden]
        self.sa_layers: List[SetAbstraction] = []
        previous = in_channels
        for ratio, width in zip(sa_ratios, channels):
            self.sa_layers.append(
                SetAbstraction(ratio, num_neighbors, [3 + previous, width, width], rng)
            )
            previous = width

        self.fp_layers: List[FeaturePropagation] = []
        skip_channels = [in_channels, channels[0]]
        for level in reversed(range(len(self.sa_layers))):
            coarse = channels[level]
            fine_skip = skip_channels[level]
            width = channels[max(level - 1, 0)] if level > 0 else hidden
            self.fp_layers.append(
                FeaturePropagation([coarse + fine_skip, width, width], k=3, rng=rng)
            )

        self.head_mlp = SharedMLP([hidden, hidden], rng=rng)
        self.head_dropout = Dropout(dropout, seed=seed)
        self.classifier = Linear(hidden, num_classes, rng=rng)

        # Register the composite layers' sub-modules for parameter discovery.
        self._sa_modules = [layer.mlp for layer in self.sa_layers]
        self._fp_modules = [layer.mlp for layer in self.fp_layers]

    def forward(self, coords: Tensor, colors: Tensor) -> Tensor:
        check_inputs(coords, colors)
        features = concatenate([colors, coords], axis=-1)

        # Encoder: keep coords/features of every resolution for skip links.
        coords_pyramid: List[Tensor] = [coords]
        feature_pyramid: List[Tensor] = [features]
        current_coords, current_features = coords, features
        for sa_layer in self.sa_layers:
            current_coords, current_features = sa_layer(current_coords, current_features)
            coords_pyramid.append(current_coords)
            feature_pyramid.append(current_features)

        # Decoder: propagate features back to the full resolution.
        decoded = feature_pyramid[-1]
        for i, fp_layer in enumerate(self.fp_layers):
            level = len(self.sa_layers) - 1 - i
            decoded = fp_layer(
                target_coords=coords_pyramid[level].data,
                source_coords=coords_pyramid[level + 1].data,
                target_features=feature_pyramid[level],
                source_features=decoded,
            )

        point_features = self.head_mlp(decoded)
        point_features = self.head_dropout(point_features)
        return self.classifier(point_features)


__all__ = ["PointNet2Seg", "SetAbstraction", "FeaturePropagation"]
