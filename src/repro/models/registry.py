"""Model registry: build any of the three PCSS models by name."""

from __future__ import annotations

from typing import Callable, Dict

from .base import SegmentationModel
from .pct import PointTransformerSeg
from .pointnet2 import PointNet2Seg
from .randlanet import RandLANetSeg
from .resgcn import ResGCNSeg

_BUILDERS: Dict[str, Callable[..., SegmentationModel]] = {
    "pointnet2": PointNet2Seg,
    "resgcn": ResGCNSeg,
    "randlanet": RandLANetSeg,
    # Extension model (Section VI, "Other models"): a Point Cloud Transformer.
    "pct": PointTransformerSeg,
}

MODEL_NAMES = tuple(_BUILDERS)


def build_model(name: str, num_classes: int, **kwargs) -> SegmentationModel:
    """Instantiate a PCSS model by its registry name.

    Parameters
    ----------
    name:
        One of ``"pointnet2"``, ``"resgcn"``, ``"randlanet"``.
    num_classes:
        Number of semantic classes of the target dataset.
    kwargs:
        Forwarded to the model constructor (``hidden``, ``num_blocks``, ...).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError as error:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(_BUILDERS)}"
        ) from error
    return builder(num_classes=num_classes, **kwargs)


def register_model(name: str, builder: Callable[..., SegmentationModel]) -> None:
    """Register a custom model builder (used by extension experiments)."""
    if name in _BUILDERS:
        raise ValueError(f"model {name!r} is already registered")
    _BUILDERS[name] = builder


__all__ = ["build_model", "register_model", "MODEL_NAMES"]
