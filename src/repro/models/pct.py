"""Point Cloud Transformer (PCT)-style segmentation model.

Section VI of the paper argues the attacks should extend to any
gradient-producing architecture and names the Point Cloud Transformer
(Guo et al., 2021) as the obvious next target.  This module implements a
small PCT-style network — per-point embedding, a stack of self-attention
blocks over the whole cloud with a learned positional encoding, and a
per-point classification head — so that claim can be tested inside this
repository (see ``repro.experiments.extensions``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.transforms import NormalizationSpec
from ..nn import Linear, SharedMLP, Tensor, concatenate, softmax
from .base import SegmentationModel, check_inputs

PCT_SPEC = NormalizationSpec(coord_low=0.0, coord_high=1.0)


class SelfAttentionBlock:
    """A single-head self-attention block with a residual connection."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        self.query = Linear(channels, channels, rng=rng)
        self.key = Linear(channels, channels, rng=rng)
        self.value = Linear(channels, channels, rng=rng)
        self.output = SharedMLP([channels, channels], rng=rng)
        self.scale = 1.0 / np.sqrt(channels)

    def __call__(self, features: Tensor) -> Tensor:
        queries = self.query(features)                       # (B, N, C)
        keys = self.key(features)
        values = self.value(features)
        scores = queries @ keys.swapaxes(1, 2) * self.scale  # (B, N, N)
        attention = softmax(scores, axis=-1)
        attended = attention @ values
        return features + self.output(attended)


class PointTransformerSeg(SegmentationModel):
    """A compact PCT-style semantic-segmentation network.

    Parameters
    ----------
    num_classes:
        Number of semantic classes.
    hidden:
        Embedding width used throughout the attention stack.
    num_blocks:
        Number of self-attention blocks.
    """

    model_name = "pct"

    def __init__(self, num_classes: int, hidden: int = 32, num_blocks: int = 2,
                 seed: int = 0, **_ignored) -> None:
        super().__init__(num_classes, PCT_SPEC)
        rng = np.random.default_rng(seed)
        self.hidden = hidden
        self.num_blocks = num_blocks
        # The positional encoder embeds raw coordinates; the feature branch
        # embeds colours.  Their concatenation feeds the attention stack.
        self.position_embedding = SharedMLP([3, hidden // 2], rng=rng)
        self.color_embedding = SharedMLP([3, hidden // 2], rng=rng)
        self.blocks: List[SelfAttentionBlock] = [
            SelfAttentionBlock(hidden, rng) for _ in range(num_blocks)
        ]
        self._block_modules = [
            module for block in self.blocks
            for module in (block.query, block.key, block.value, block.output)
        ]
        self.head = SharedMLP([hidden * (num_blocks + 1), hidden], rng=rng)
        self.classifier = Linear(hidden, num_classes, rng=rng)

    def forward(self, coords: Tensor, colors: Tensor) -> Tensor:
        check_inputs(coords, colors)
        embedded = concatenate([
            self.position_embedding(coords),
            self.color_embedding(colors),
        ], axis=-1)
        skips = [embedded]
        features = embedded
        for block in self.blocks:
            features = block(features)
            skips.append(features)
        fused = self.head(concatenate(skips, axis=-1))
        return self.classifier(fused)


__all__ = ["PointTransformerSeg", "SelfAttentionBlock", "PCT_SPEC"]
