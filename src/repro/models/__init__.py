"""``repro.models`` — the PCSS model families evaluated by the paper.

The three victims of the study — :class:`PointNet2Seg` (set
abstraction + feature propagation), :class:`ResGCNSeg` (residual graph
convolutions over dilated kNN graphs) and :class:`RandLANetSeg` (random
sampling with local feature aggregation) — plus the
:class:`PointTransformerSeg` extension victim (Section VI).  All build
on the :class:`SegmentationModel` interface over :mod:`repro.nn`
tensors, are constructible by name through the registry
(:func:`build_model` / :func:`register_model`), and share one training
loop (:func:`train_model` with checkpointing, :func:`evaluate_model`).
Trained weights are cached under the experiment cache dir, which is how
pipeline and serve workers warm up without retraining.
"""

from .base import SegmentationModel, check_inputs
from .pct import PointTransformerSeg
from .pointnet2 import PointNet2Seg
from .randlanet import RandLANetSeg
from .registry import MODEL_NAMES, build_model, register_model
from .resgcn import ResGCNSeg
from .train import (
    TrainingConfig,
    TrainingHistory,
    evaluate_model,
    train_model,
    train_or_load,
)

__all__ = [
    "SegmentationModel",
    "check_inputs",
    "PointNet2Seg",
    "ResGCNSeg",
    "RandLANetSeg",
    "PointTransformerSeg",
    "build_model",
    "register_model",
    "MODEL_NAMES",
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "evaluate_model",
    "train_or_load",
]
