"""``repro.models`` — the three PCSS model families evaluated by the paper."""

from .base import SegmentationModel, check_inputs
from .pct import PointTransformerSeg
from .pointnet2 import PointNet2Seg
from .randlanet import RandLANetSeg
from .registry import MODEL_NAMES, build_model, register_model
from .resgcn import ResGCNSeg
from .train import (
    TrainingConfig,
    TrainingHistory,
    evaluate_model,
    train_model,
    train_or_load,
)

__all__ = [
    "SegmentationModel",
    "check_inputs",
    "PointNet2Seg",
    "ResGCNSeg",
    "RandLANetSeg",
    "PointTransformerSeg",
    "build_model",
    "register_model",
    "MODEL_NAMES",
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "evaluate_model",
    "train_or_load",
]
