"""Common interface for the point-cloud semantic-segmentation models."""

from __future__ import annotations

import numpy as np

from ..accel import ComputePolicy, neighborhoods, use_policy
from ..geometry.transforms import NormalizationSpec
from ..nn import Module, Tensor


class SegmentationModel(Module):
    """Base class for PCSS models.

    Every model maps a batch of point clouds — given as separate coordinate
    and colour tensors so attacks can differentiate with respect to either
    field independently — to per-point class logits:

    ``forward(coords: (B, N, 3), colors: (B, N, 3)) -> logits (B, N, num_classes)``

    Sub-classes must set :attr:`num_classes`, :attr:`spec` (the input
    normalisation convention) and :attr:`model_name`.
    """

    model_name: str = "segmentation-model"

    def __init__(self, num_classes: int, spec: NormalizationSpec) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.spec = spec

    # ------------------------------------------------------------------ #
    # Convenience inference helpers (NumPy in / NumPy out)
    # ------------------------------------------------------------------ #
    def logits_numpy(self, coords: np.ndarray, colors: np.ndarray) -> np.ndarray:
        """Per-point logits for normalised inputs, with autograd disabled.

        Results are memoised content-keyed (inputs *and* every parameter
        array participate in the key), so e.g. re-scoring the same clean
        cloud for each attack method of a table costs one forward pass.
        The evaluation-mode forward is side-effect free, which is what makes
        the memoisation sound.
        """
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)

        def compute() -> np.ndarray:
            was_training = self.training
            self.eval()
            # Reporting always runs in float64, whatever policy is active.
            with use_policy(ComputePolicy.exact()):
                logits = self.forward(Tensor(coords), Tensor(colors)).data
            if was_training:
                self.train()
            return logits

        state = [param.data for _, param in self.named_parameters()]
        state.extend(np.asarray(buffer) for _, buffer in self.named_buffers())
        return neighborhoods().memo(("logits", id(self)),
                                    (coords, colors, *state), compute)

    def predict(self, coords: np.ndarray, colors: np.ndarray) -> np.ndarray:
        """Per-point predicted labels ``(B, N)`` for normalised inputs."""
        return np.argmax(self.logits_numpy(coords, colors), axis=-1)

    def predict_single(self, coords: np.ndarray, colors: np.ndarray) -> np.ndarray:
        """Predicted labels ``(N,)`` for a single (unbatched) cloud."""
        coords = np.asarray(coords)
        colors = np.asarray(colors)
        return self.predict(coords[None], colors[None])[0]

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line human readable description."""
        return (f"{self.model_name}: {self.num_classes} classes, "
                f"{self.num_parameters()} parameters, "
                f"coords in [{self.spec.coord_low}, {self.spec.coord_high}], "
                f"colors in [{self.spec.color_low}, {self.spec.color_high}]")


def check_inputs(coords: Tensor, colors: Tensor) -> None:
    """Validate the standard ``(B, N, 3)`` input shapes."""
    if coords.ndim != 3 or coords.shape[-1] != 3:
        raise ValueError(f"coords must have shape (B, N, 3), got {coords.shape}")
    if colors.ndim != 3 or colors.shape[-1] != 3:
        raise ValueError(f"colors must have shape (B, N, 3), got {colors.shape}")
    if coords.shape[:2] != colors.shape[:2]:
        raise ValueError("coords and colors must agree on batch and point dimensions")


__all__ = ["SegmentationModel", "check_inputs"]
