"""Training loop and checkpoint cache for the PCSS models.

The paper uses publicly released pre-trained checkpoints; the offline
equivalent is to train each model on the synthetic datasets.  Training is
deliberately small-scale (a few epochs over a few dozen synthetic scenes) but
reaches the high clean accuracy the attacks need as a starting point.
"""

from __future__ import annotations

import os
import time
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import PointCloudScene
from ..datasets.splits import iterate_batches, prepare_batch
from ..metrics.segmentation import accuracy_score, average_iou
from ..nn import Adam, Tensor, cross_entropy, save_state_dict, load_into
from .base import SegmentationModel


@dataclass
class TrainingConfig:
    """Hyper-parameters of the model-training loop."""

    epochs: int = 12
    batch_size: int = 4
    learning_rate: float = 5e-3
    weight_decay: float = 0.0
    num_points: Optional[int] = None
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0          # 0 disables progress printing
    class_balanced: bool = True


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves produced by :func:`train_model`."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    duration_seconds: float = 0.0


def _class_weights(scenes: Sequence[PointCloudScene], num_classes: int) -> np.ndarray:
    counts = np.zeros(num_classes, dtype=np.float64)
    for scene in scenes:
        counts += np.bincount(scene.labels, minlength=num_classes)
    frequencies = counts / max(counts.sum(), 1.0)
    weights = 1.0 / np.sqrt(frequencies + 1e-4)
    return weights / weights.mean()


def train_model(model: SegmentationModel, scenes: Sequence[PointCloudScene],
                config: Optional[TrainingConfig] = None) -> TrainingHistory:
    """Train ``model`` on ``scenes`` with cross-entropy and Adam.

    Returns the loss/accuracy history.  The model is left in ``eval`` mode,
    ready for attack experiments.
    """
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    weights = (_class_weights(scenes, model.num_classes)
               if config.class_balanced else None)

    history = TrainingHistory()
    start = time.time()
    model.train()
    for epoch in range(config.epochs):
        epoch_losses = []
        epoch_correct = 0
        epoch_total = 0
        for batch in iterate_batches(scenes, model.spec, config.batch_size,
                                     num_points=config.num_points, rng=rng,
                                     shuffle=config.shuffle):
            coords = Tensor(batch.coords)
            colors = Tensor(batch.colors)
            logits = model(coords, colors)
            loss = cross_entropy(logits, batch.labels, weight=weights)
            model.zero_grad()
            loss.backward()
            optimizer.step()

            epoch_losses.append(loss.item())
            prediction = np.argmax(logits.data, axis=-1)
            epoch_correct += int((prediction == batch.labels).sum())
            epoch_total += batch.labels.size
        mean_loss = float(np.mean(epoch_losses))
        train_accuracy = epoch_correct / max(epoch_total, 1)
        history.losses.append(mean_loss)
        history.accuracies.append(train_accuracy)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            print(f"epoch {epoch + 1:3d}: loss={mean_loss:.4f} "
                  f"accuracy={train_accuracy:.3f}")
    history.duration_seconds = time.time() - start
    model.eval()
    return history


def evaluate_model(model: SegmentationModel, scenes: Sequence[PointCloudScene],
                   num_points: Optional[int] = None,
                   rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
    """Clean accuracy and aIoU of ``model`` over ``scenes``."""
    rng = rng or np.random.default_rng(0)
    model.eval()
    accuracies = []
    ious = []
    for scene in scenes:
        batch = prepare_batch([scene], model.spec, num_points=num_points, rng=rng)
        prediction = model.predict(batch.coords, batch.colors)[0]
        labels = batch.labels[0]
        accuracies.append(accuracy_score(prediction, labels))
        ious.append(average_iou(prediction, labels, model.num_classes))
    return {
        "accuracy": float(np.mean(accuracies)),
        "aiou": float(np.mean(ious)),
        "num_scenes": float(len(scenes)),
    }


def train_or_load(model: SegmentationModel, scenes: Sequence[PointCloudScene],
                  cache_path: str, config: Optional[TrainingConfig] = None,
                  force_retrain: bool = False) -> SegmentationModel:
    """Load a cached checkpoint when available, otherwise train and cache.

    This plays the role of the paper's "pre-trained model" downloads: the
    benchmark harness and the examples share checkpoints through this cache
    so each table does not retrain from scratch.
    """
    if not force_retrain and os.path.exists(cache_path):
        try:
            load_into(model, cache_path)
            model.eval()
            return model
        except (KeyError, ValueError, OSError, EOFError, zipfile.BadZipFile):
            pass  # incompatible or corrupt cache — retrain below
    train_model(model, scenes, config)
    save_state_dict(model, cache_path)
    return model


__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "evaluate_model",
    "train_or_load",
]
