"""RandLA-Net-style segmentation model.

Reproduces the structure of RandLA-Net (Hu et al., CVPR 2020) at a
CPU-friendly scale:

* **random down-sampling** between encoder layers (the paper's key idea for
  scaling to huge outdoor clouds such as Semantic3D);
* **local spatial encoding (LocSE)**: each point's neighbours are described by
  ``[p_i, p_j, p_i - p_j, ||p_i - p_j||]``, embedded by a shared MLP and
  concatenated with the neighbours' features;
* **attentive pooling**: a learned softmax over neighbours replaces max
  pooling;
* **nearest-neighbour up-sampling** with skip connections in the decoder.

Because the sampling step is *random* rather than geometric, perturbing
coordinates gives the attacker even less control over which points survive —
the reason the paper does not implement a coordinate-based attack against
RandLA-Net (Section VI, limitation 2).  Colour perturbations are unaffected.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..accel import neighborhoods
from ..geometry.sampling import random_sampling
from ..geometry.transforms import RANDLANET_SPEC
from ..nn import (
    Linear,
    SharedMLP,
    Tensor,
    concatenate,
    gather_points,
    knn_interpolate,
    softmax,
)
from .base import SegmentationModel, check_inputs


class LocalFeatureAggregation:
    """LocSE + attentive pooling over a k-NN neighbourhood."""

    def __init__(self, in_channels: int, out_channels: int, k: int,
                 rng: np.random.Generator) -> None:
        self.k = k
        self.position_mlp = SharedMLP([10, out_channels // 2], rng=rng)
        self.feature_mlp = SharedMLP([in_channels, out_channels // 2], rng=rng)
        self.attention = Linear(out_channels, out_channels, rng=rng)
        self.output_mlp = SharedMLP([out_channels, out_channels], rng=rng)

    def __call__(self, coords: Tensor, features: Tensor,
                 neighbor_idx: np.ndarray) -> Tensor:
        neighbours = gather_points(coords, neighbor_idx)              # (B, N, K, 3)
        center = coords.expand_dims(2)
        relative = center - neighbours
        distance = (relative * relative).sum(axis=-1, keepdims=True).sqrt()
        center_tiled = center.broadcast_to(neighbours.shape)          # view, no copy
        position_encoding = concatenate(
            [center_tiled, neighbours, relative, distance], axis=-1)  # (B, N, K, 10)
        position_features = self.position_mlp(position_encoding)

        point_features = self.feature_mlp(features)
        neighbour_features = gather_points(point_features, neighbor_idx)
        combined = concatenate([position_features, neighbour_features], axis=-1)

        scores = softmax(self.attention(combined), axis=2)
        return self.output_mlp((combined * scores).sum(axis=2))


class RandLANetSeg(SegmentationModel):
    """RandLA-Net semantic-segmentation network.

    Parameters
    ----------
    num_classes:
        Number of semantic classes.
    hidden:
        Base channel width; deeper encoder layers double it.
    k:
        Neighbourhood size for local feature aggregation.
    num_layers:
        Number of encoder (and decoder) levels.
    decimation:
        Random down-sampling factor between encoder levels (4 in the paper).
    seed:
        Seed controlling weight initialisation and the random sampling.
    """

    model_name = "randlanet"

    def __init__(self, num_classes: int, hidden: int = 32, k: int = 16,
                 num_layers: int = 2, decimation: int = 4, seed: int = 0) -> None:
        super().__init__(num_classes, RANDLANET_SPEC)
        rng = np.random.default_rng(seed)
        self.k = k
        self.num_layers = num_layers
        self.decimation = decimation
        self._seed = seed
        self._sampling_rng = np.random.default_rng(seed + 1)

        self.input_mlp = SharedMLP([6, hidden], rng=rng)
        widths = [hidden * (2 ** i) for i in range(num_layers)]
        self.encoder_layers: List[LocalFeatureAggregation] = []
        previous = hidden
        for width in widths:
            self.encoder_layers.append(LocalFeatureAggregation(previous, width, k, rng))
            previous = width
        self._encoder_modules = [
            module
            for layer in self.encoder_layers
            for module in (layer.position_mlp, layer.feature_mlp,
                           layer.attention, layer.output_mlp)
        ]

        self.decoder_layers: List[SharedMLP] = []
        for level in reversed(range(num_layers)):
            skip = widths[level - 1] if level > 0 else hidden
            out = widths[level - 1] if level > 0 else hidden
            self.decoder_layers.append(SharedMLP([widths[level] + skip, out], rng=rng))

        self.classifier = Linear(hidden, num_classes, rng=rng)

    # ------------------------------------------------------------------ #
    def forward(self, coords: Tensor, colors: Tensor) -> Tensor:
        check_inputs(coords, colors)
        batch, num_points, _ = coords.shape

        # Random down-sampling is part of training (as in RandLA-Net); during
        # evaluation a fixed seed keeps the model a deterministic function of
        # its input, which both reproducibility and attack optimisation need.
        # Training threads one persistent stream through the whole batch (the
        # historical behaviour trained checkpoints depend on); evaluation
        # gives every batch item its own freshly seeded stream so a scene's
        # sampling — and therefore its logits — is independent of its batch
        # position (required for batched attacks to match serial runs).
        if self.training:
            sampling_rngs = [self._sampling_rng] * batch
        else:
            sampling_rngs = [np.random.default_rng(self._seed + 1)
                             for _ in range(batch)]

        features = self.input_mlp(concatenate([colors, coords], axis=-1))

        coords_pyramid: List[Tensor] = [coords]
        feature_pyramid: List[Tensor] = [features]
        current_coords, current_features = coords, features
        for layer in self.encoder_layers:
            n = current_coords.shape[1]
            neighbor_idx = neighborhoods().knn_batch(
                current_coords.data, min(self.k, n),
                slot=("randlanet.enc", id(layer)))
            aggregated = layer(current_coords, current_features, neighbor_idx)

            keep = max(1, n // self.decimation)
            sample_idx = np.stack([
                random_sampling(n, keep, sampling_rngs[b]) for b in range(batch)
            ])
            current_coords = gather_points(current_coords, sample_idx)
            current_features = gather_points(aggregated, sample_idx)
            coords_pyramid.append(current_coords)
            feature_pyramid.append(current_features)

        decoded = feature_pyramid[-1]
        for i, decoder in enumerate(self.decoder_layers):
            level = self.num_layers - 1 - i
            upsampled = knn_interpolate(decoded, coords_pyramid[level + 1].data,
                                        coords_pyramid[level].data, k=1,
                                        slot=("randlanet.dec", id(self), i))
            decoded = decoder(concatenate([upsampled, feature_pyramid[level]], axis=-1))

        return self.classifier(decoded)


__all__ = ["RandLANetSeg", "LocalFeatureAggregation"]
